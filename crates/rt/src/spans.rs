//! argo-prof: causal span profiling with per-epoch critical-path attribution.
//!
//! The PR-1 telemetry layer answers *how long* each stage took; this module
//! answers *why the epoch took as long as it did*. Every batch's life —
//! seed pick, neighbor sampling, feature gather, cache service, channel
//! enqueue, reorder-heap dequeue, forward/backward, gradient sync — is
//! recorded as a span `(worker, role, kind, batch, start, end)` into a
//! lock-free per-worker ring ([`WorkerRing`]): one writer per ring, no
//! locks on the hot path, registration only touches a mutex once per
//! worker. Spans from all rings share one clock origin, so after an epoch
//! the drained set forms a causal chain keyed by batch id.
//!
//! [`critical_path`] then attributes each instant of the epoch to the
//! stage (or channel/heap *wait*) that was the binding constraint, giving
//! fractions that sum to 1.0 — the observability base for the metadata-tax
//! and work-stealing work in ROADMAP items 2–3.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// Spans a single [`WorkerRing`] can hold before further pushes are counted
/// as dropped. 8192 spans × 24 B ≈ 192 KiB per worker, far above the span
/// volume of one epoch (a handful of spans per batch).
pub const RING_CAPACITY: usize = 8192;

/// Histogram bins used by [`critical_path`] attribution.
const BINS: usize = 2048;

/// Pipeline step a span measures. Unlike [`crate::Stage`] (the coarse
/// 4-stage trace the perf model shares), span kinds separate the *waits* —
/// a producer blocked on the bounded channel, a consumer blocked on the
/// reorder heap — from the work, which is exactly what critical-path
/// attribution needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Seed draw + neighbor sampling on a loader worker.
    Pick,
    /// Feature gather (`index_select`), on either side of the channel.
    Gather,
    /// Feature rows served through the cross-batch cache.
    Cache,
    /// Producer blocked enqueueing into the bounded channel (consumer slow).
    EnqueueWait,
    /// Consumer blocked on channel receive / reorder heap (producers slow).
    DequeueWait,
    /// Forward + backward propagation.
    Compute,
    /// Gradient synchronization across processes.
    Sync,
    /// Serving: a request queued in the deadline micro-batcher.
    ServeQueue,
    /// Serving: a micro-batch executing (sample + gather + forward).
    ServeExec,
}

impl SpanKind {
    /// Attribution label, aligned with [`crate::Stage::label`] where the
    /// concepts coincide.
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Pick => "sample",
            SpanKind::Gather => "gather",
            SpanKind::Cache => "cache",
            SpanKind::EnqueueWait => "channel_wait",
            SpanKind::DequeueWait => "heap_wait",
            SpanKind::Compute => "compute",
            SpanKind::Sync => "sync",
            SpanKind::ServeQueue => "serve_queue",
            SpanKind::ServeExec => "serve_exec",
        }
    }

    fn code(self) -> u64 {
        match self {
            SpanKind::Pick => 0,
            SpanKind::Gather => 1,
            SpanKind::Cache => 2,
            SpanKind::EnqueueWait => 3,
            SpanKind::DequeueWait => 4,
            SpanKind::Compute => 5,
            SpanKind::Sync => 6,
            SpanKind::ServeQueue => 7,
            SpanKind::ServeExec => 8,
        }
    }

    fn from_code(code: u64) -> SpanKind {
        match code {
            0 => SpanKind::Pick,
            1 => SpanKind::Gather,
            2 => SpanKind::Cache,
            3 => SpanKind::EnqueueWait,
            4 => SpanKind::DequeueWait,
            5 => SpanKind::Compute,
            7 => SpanKind::ServeQueue,
            8 => SpanKind::ServeExec,
            _ => SpanKind::Sync,
        }
    }
}

/// Which side of the batch channel a ring's owner works on. Producer rings
/// belong to loader workers (pick/gather/cache/enqueue); consumer rings to
/// the training processes and the reorder-heap drain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Loader-side: produces batches into the channel.
    Producer,
    /// Engine-side: drains batches and trains.
    Consumer,
}

/// One drained span.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpanRecord {
    /// Ring (worker) index assigned at registration.
    pub worker: usize,
    /// Producer or consumer side.
    pub role: Role,
    /// What the interval measured.
    pub kind: SpanKind,
    /// Batch id linking this span into the batch's causal chain.
    pub batch: u64,
    /// Seconds since the profiler's origin.
    pub start: f64,
    /// Seconds since the profiler's origin (`>= start`).
    pub end: f64,
}

/// Token returned by [`WorkerRing::span_begin`]; hand it back to
/// [`WorkerRing::span_end`] to close the interval. The argo-lint
/// `span-pairing` rule checks that every begin is lexically paired with an
/// end on all paths.
#[derive(Clone, Copy, Debug)]
pub struct SpanStart {
    kind: SpanKind,
    batch: u64,
    at: f64,
}

const BATCH_MASK: u64 = (1 << 56) - 1;

struct Slot {
    meta: AtomicU64,
    start: AtomicU64,
    end: AtomicU64,
}

/// A lock-free span ring owned by exactly one worker thread. Pushes are
/// plain atomic stores (single writer); draining happens from the profiler
/// after the worker quiesced. When full, further spans are counted in
/// `dropped` instead of overwriting history, so attribution never sees a
/// torn timeline.
pub struct WorkerRing {
    worker: usize,
    role: Role,
    origin: Instant,
    enabled: bool,
    head: AtomicUsize,
    dropped: AtomicU64,
    slots: Box<[Slot]>,
}

impl WorkerRing {
    fn new(worker: usize, role: Role, origin: Instant, capacity: usize) -> Self {
        let slots = (0..capacity)
            .map(|_| Slot {
                meta: AtomicU64::new(0),
                start: AtomicU64::new(0),
                end: AtomicU64::new(0),
            })
            .collect();
        Self {
            worker,
            role,
            origin,
            enabled: true,
            head: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            slots,
        }
    }

    /// A ring that records nothing — the zero-overhead stand-in used when
    /// profiling is off, so instrumentation sites need no `Option` dance.
    pub fn detached() -> Self {
        Self {
            worker: 0,
            role: Role::Producer,
            origin: Instant::now(),
            enabled: false,
            head: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            slots: Box::new([]),
        }
    }

    /// Whether spans are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Seconds since the owning profiler's origin.
    pub fn now(&self) -> f64 {
        if !self.enabled {
            return 0.0;
        }
        self.origin.elapsed().as_secs_f64()
    }

    /// Opens a span of `kind` for `batch`. Pair with
    /// [`WorkerRing::span_end`] on every path (enforced by argo-lint).
    pub fn span_begin(&self, kind: SpanKind, batch: u64) -> SpanStart {
        SpanStart {
            kind,
            batch,
            at: self.now(),
        }
    }

    /// Closes a span opened by [`WorkerRing::span_begin`].
    pub fn span_end(&self, start: SpanStart) {
        if !self.enabled {
            return;
        }
        let end = self.now();
        self.push(start.kind, start.batch, start.at, end);
    }

    /// Records a complete interval directly (timestamps from
    /// [`WorkerRing::now`]). The begin/end API above is preferred in
    /// instrumented code; `push` exists for synthetic fixtures and for
    /// intervals whose endpoints were measured elsewhere.
    pub fn push(&self, kind: SpanKind, batch: u64, start: f64, end: f64) {
        if !self.enabled {
            return;
        }
        let n = self.head.load(Ordering::Relaxed);
        if n >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = &self.slots[n];
        slot.meta
            .store(kind.code() << 56 | (batch & BATCH_MASK), Ordering::Relaxed);
        slot.start.store(start.to_bits(), Ordering::Relaxed);
        slot.end.store(end.max(start).to_bits(), Ordering::Relaxed);
        // Publish the slot: readers load `head` with Acquire.
        self.head.store(n + 1, Ordering::Release);
    }

    /// Spans currently held (for tests and diagnostics).
    pub fn len(&self) -> usize {
        self.head.load(Ordering::Acquire).min(self.slots.len())
    }

    /// Whether the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn drain_into(&self, out: &mut Vec<SpanRecord>) -> u64 {
        let n = self.len();
        for slot in self.slots.iter().take(n) {
            let meta = slot.meta.load(Ordering::Relaxed);
            out.push(SpanRecord {
                worker: self.worker,
                role: self.role,
                kind: SpanKind::from_code(meta >> 56),
                batch: meta & BATCH_MASK,
                start: f64::from_bits(slot.start.load(Ordering::Relaxed)),
                end: f64::from_bits(slot.end.load(Ordering::Relaxed)),
            });
        }
        self.head.store(0, Ordering::Release);
        self.dropped.swap(0, Ordering::Relaxed)
    }
}

/// Everything one [`SpanProfiler::drain`] yields.
#[derive(Clone, Debug, Default)]
pub struct SpanDrain {
    /// All spans from all rings, sorted by start time.
    pub records: Vec<SpanRecord>,
    /// Spans lost to full rings since the previous drain.
    pub dropped: u64,
}

/// Hands out per-worker rings sharing one clock origin and drains them
/// after the workers quiesced (epoch end). The registry mutex is touched
/// once per worker registration and once per drain — never per span.
pub struct SpanProfiler {
    origin: Instant,
    enabled: bool,
    capacity: usize,
    rings: Mutex<Vec<Arc<WorkerRing>>>,
}

impl SpanProfiler {
    /// An active profiler with [`RING_CAPACITY`] spans per ring.
    pub fn new() -> Self {
        Self::with_capacity(RING_CAPACITY)
    }

    /// An active profiler whose rings hold `capacity` spans each.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            origin: Instant::now(),
            enabled: true,
            capacity,
            rings: Mutex::new(Vec::new()),
        }
    }

    /// A profiler whose rings record nothing (zero hot-path overhead).
    pub fn disabled() -> Self {
        Self {
            origin: Instant::now(),
            enabled: false,
            capacity: 0,
            rings: Mutex::new(Vec::new()),
        }
    }

    /// Whether rings handed out by this profiler record spans.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Seconds since the profiler was created (the shared span clock).
    pub fn now(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }

    /// Registers a new ring for one worker thread. Disabled profilers hand
    /// out detached rings and skip registration entirely.
    pub fn ring(&self, role: Role) -> Arc<WorkerRing> {
        if !self.enabled {
            return Arc::new(WorkerRing::detached());
        }
        let mut rings = self.rings.lock();
        let ring = Arc::new(WorkerRing::new(
            rings.len(),
            role,
            self.origin,
            self.capacity,
        ));
        rings.push(Arc::clone(&ring));
        ring
    }

    /// Collects and clears every registered ring. Call only after the
    /// owning workers quiesced (threads joined); concurrent pushes during a
    /// drain are not torn, but may land in either epoch.
    pub fn drain(&self) -> SpanDrain {
        let rings = std::mem::take(&mut *self.rings.lock());
        let mut out = SpanDrain::default();
        for ring in &rings {
            out.dropped += ring.drain_into(&mut out.records);
        }
        out.records.sort_by(|a, b| a.start.total_cmp(&b.start));
        out
    }
}

impl Default for SpanProfiler {
    fn default() -> Self {
        Self::new()
    }
}

/// Attribution categories [`critical_path`] reports, in render order. The
/// first seven are [`SpanKind::label`]s; `"other"` absorbs epoch time not
/// covered by any span (per-epoch setup, thread spawn/join, straggler
/// skew).
pub const CRITICAL_PATH_STAGES: &[&str] = &[
    "compute",
    "gather",
    "sample",
    "cache",
    "sync",
    "channel_wait",
    "heap_wait",
    "other",
];

/// Per-epoch critical-path attribution: the fraction of `[0, horizon]`
/// for which each stage (or wait) was the binding constraint. Returns one
/// `(label, fraction)` pair per [`CRITICAL_PATH_STAGES`] entry; fractions
/// sum to exactly 1.0 when `horizon > 0` and spans exist.
///
/// The binding constraint of an instant is decided by a fixed priority:
///
/// 1. any consumer computing → `compute` (training makes progress);
/// 2. any consumer gathering → `gather`; any consumer syncing → `sync`;
/// 3. every active consumer waiting on the heap → whatever the producers
///    are doing right then: `sample`, `gather`, or `cache` work means the
///    loader is the constraint; producers stuck enqueueing means the
///    channel is (`channel_wait`); idle producers mean the reorder heap
///    itself is (`heap_wait`);
/// 4. no span at all → `other`.
pub fn critical_path(records: &[SpanRecord], horizon: f64) -> Vec<(&'static str, f64)> {
    if horizon <= 0.0 || records.is_empty() {
        return Vec::new();
    }
    // One activity bitmap per (side, kind) we distinguish.
    let mut cons_compute = [false; BINS];
    let mut cons_gather = [false; BINS];
    let mut cons_sync = [false; BINS];
    let mut cons_wait = [false; BINS];
    let mut prod_sample = [false; BINS];
    let mut prod_gather = [false; BINS];
    let mut prod_cache = [false; BINS];
    let mut prod_enqueue = [false; BINS];
    for r in records {
        // Clamp into [0, BINS]; spans may straddle the horizon (stragglers).
        let lo = (((r.start / horizon) * BINS as f64).floor().max(0.0) as usize).min(BINS);
        let hi = (((r.end / horizon) * BINS as f64).ceil().max(0.0) as usize).min(BINS);
        if lo >= hi {
            continue;
        }
        let map = match (r.role, r.kind) {
            (Role::Consumer, SpanKind::Compute) => &mut cons_compute,
            (Role::Consumer, SpanKind::Gather) => &mut cons_gather,
            (Role::Consumer, SpanKind::Sync) => &mut cons_sync,
            (Role::Consumer, SpanKind::DequeueWait) => &mut cons_wait,
            (Role::Producer, SpanKind::Pick) => &mut prod_sample,
            (Role::Producer, SpanKind::Gather) => &mut prod_gather,
            (Role::Producer, SpanKind::Cache) => &mut prod_cache,
            (Role::Producer, SpanKind::EnqueueWait) => &mut prod_enqueue,
            // Kinds on the "wrong" side carry no attribution signal; the
            // `Serve*` kinds belong to the request path, whose attribution
            // is per-request latency histograms, not the epoch timeline.
            _ => continue,
        };
        for b in map.iter_mut().take(hi).skip(lo) {
            *b = true;
        }
    }
    let mut counts = [0u64; 8];
    for b in 0..BINS {
        let idx = if cons_compute[b] {
            0 // compute
        } else if cons_gather[b] {
            1 // gather
        } else if cons_sync[b] {
            4 // sync
        } else if cons_wait[b] {
            if prod_sample[b] {
                2 // sample
            } else if prod_gather[b] {
                1 // gather
            } else if prod_cache[b] {
                3 // cache
            } else if prod_enqueue[b] {
                5 // channel_wait
            } else {
                6 // heap_wait
            }
        } else {
            7 // other
        };
        counts[idx] += 1;
    }
    CRITICAL_PATH_STAGES
        .iter()
        .zip(counts.iter())
        .map(|(label, c)| (*label, *c as f64 / BINS as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_end_records_interval() {
        let prof = SpanProfiler::new();
        let ring = prof.ring(Role::Producer);
        let s = ring.span_begin(SpanKind::Pick, 7);
        std::thread::sleep(std::time::Duration::from_millis(1));
        ring.span_end(s);
        let d = prof.drain();
        assert_eq!(d.records.len(), 1);
        assert_eq!(d.dropped, 0);
        let r = d.records[0];
        assert_eq!(r.kind, SpanKind::Pick);
        assert_eq!(r.role, Role::Producer);
        assert_eq!(r.batch, 7);
        assert!(r.end > r.start);
    }

    #[test]
    fn disabled_and_detached_record_nothing() {
        let prof = SpanProfiler::disabled();
        assert!(!prof.is_enabled());
        let ring = prof.ring(Role::Consumer);
        assert!(!ring.is_enabled());
        let s = ring.span_begin(SpanKind::Compute, 0);
        ring.span_end(s);
        ring.push(SpanKind::Sync, 1, 0.0, 1.0);
        assert!(prof.drain().records.is_empty());

        let det = WorkerRing::detached();
        det.push(SpanKind::Pick, 0, 0.0, 1.0);
        assert!(det.is_empty());
    }

    #[test]
    fn full_ring_counts_drops_instead_of_overwriting() {
        let prof = SpanProfiler::with_capacity(4);
        let ring = prof.ring(Role::Producer);
        for i in 0..6 {
            ring.push(SpanKind::Pick, i, i as f64, i as f64 + 0.5);
        }
        assert_eq!(ring.len(), 4);
        let d = prof.drain();
        assert_eq!(d.records.len(), 4);
        assert_eq!(d.dropped, 2);
        // Oldest spans were kept.
        assert_eq!(d.records[0].batch, 0);
        assert_eq!(d.records[3].batch, 3);
    }

    #[test]
    fn drain_sorts_across_rings_and_resets() {
        let prof = SpanProfiler::new();
        let a = prof.ring(Role::Producer);
        let b = prof.ring(Role::Consumer);
        assert_ne!(a.worker, b.worker);
        b.push(SpanKind::Compute, 1, 0.5, 0.9);
        a.push(SpanKind::Pick, 1, 0.1, 0.4);
        let d = prof.drain();
        assert_eq!(d.records.len(), 2);
        assert!(d.records[0].start < d.records[1].start);
        assert_eq!(d.records[0].role, Role::Producer);
        // Drained rings are unregistered; a second drain is empty.
        assert!(prof.drain().records.is_empty());
    }

    #[test]
    fn inverted_interval_is_clamped() {
        let prof = SpanProfiler::new();
        let ring = prof.ring(Role::Producer);
        ring.push(SpanKind::Gather, 0, 1.0, 0.25);
        let r = prof.drain().records[0];
        assert_eq!(r.start, 1.0);
        assert_eq!(r.end, 1.0);
    }

    #[test]
    fn kind_codes_round_trip() {
        for kind in [
            SpanKind::Pick,
            SpanKind::Gather,
            SpanKind::Cache,
            SpanKind::EnqueueWait,
            SpanKind::DequeueWait,
            SpanKind::Compute,
            SpanKind::Sync,
        ] {
            assert_eq!(SpanKind::from_code(kind.code()), kind);
            assert!(CRITICAL_PATH_STAGES.contains(&kind.label()));
        }
        // Serving kinds round-trip too but live outside the epoch
        // critical-path taxonomy.
        for kind in [SpanKind::ServeQueue, SpanKind::ServeExec] {
            assert_eq!(SpanKind::from_code(kind.code()), kind);
            assert!(!CRITICAL_PATH_STAGES.contains(&kind.label()));
        }
    }

    #[test]
    fn serve_spans_do_not_perturb_critical_path() {
        let records = vec![
            rec(Role::Consumer, SpanKind::Compute, 0.0, 1.0),
            rec(Role::Consumer, SpanKind::ServeExec, 0.0, 1.0),
            rec(Role::Producer, SpanKind::ServeQueue, 0.0, 1.0),
        ];
        let cp = critical_path(&records, 1.0);
        assert_eq!(cp[0], ("compute", 1.0));
    }

    fn rec(role: Role, kind: SpanKind, start: f64, end: f64) -> SpanRecord {
        SpanRecord {
            worker: 0,
            role,
            kind,
            batch: 0,
            start,
            end,
        }
    }

    #[test]
    fn critical_path_fractions_sum_to_one() {
        let records = vec![
            rec(Role::Consumer, SpanKind::Compute, 0.0, 0.5),
            rec(Role::Consumer, SpanKind::DequeueWait, 0.5, 0.8),
            rec(Role::Producer, SpanKind::Pick, 0.5, 0.8),
        ];
        let cp = critical_path(&records, 1.0);
        assert_eq!(cp.len(), CRITICAL_PATH_STAGES.len());
        let total: f64 = cp.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12, "sum {total}");
        let get = |label: &str| cp.iter().find(|(l, _)| *l == label).map(|(_, f)| *f);
        assert!((get("compute").expect("compute") - 0.5).abs() < 2e-3);
        assert!((get("sample").expect("sample") - 0.3).abs() < 2e-3);
        assert!((get("other").expect("other") - 0.2).abs() < 2e-3);
    }

    #[test]
    fn waits_attribute_to_producer_activity() {
        // Consumer waits the whole time. Producers: enqueue-blocked first
        // half, idle second half → channel_wait then heap_wait.
        let records = vec![
            rec(Role::Consumer, SpanKind::DequeueWait, 0.0, 1.0),
            rec(Role::Producer, SpanKind::EnqueueWait, 0.0, 0.5),
        ];
        let cp = critical_path(&records, 1.0);
        let get = |label: &str| {
            cp.iter()
                .find(|(l, _)| *l == label)
                .map(|(_, f)| *f)
                .expect("label present")
        };
        assert!((get("channel_wait") - 0.5).abs() < 2e-3);
        assert!((get("heap_wait") - 0.5).abs() < 2e-3);
        assert_eq!(get("other"), 0.0);
    }

    #[test]
    fn compute_beats_concurrent_producer_work() {
        // While any consumer computes, the epoch is compute-bound even if
        // producers are busy sampling underneath.
        let records = vec![
            rec(Role::Consumer, SpanKind::Compute, 0.0, 1.0),
            rec(Role::Producer, SpanKind::Pick, 0.0, 1.0),
        ];
        let cp = critical_path(&records, 1.0);
        assert!((cp[0].1 - 1.0).abs() < 1e-12);
        assert_eq!(cp[0].0, "compute");
    }

    #[test]
    fn critical_path_empty_inputs() {
        assert!(critical_path(&[], 1.0).is_empty());
        let r = [rec(Role::Consumer, SpanKind::Compute, 0.0, 1.0)];
        assert!(critical_path(&r, 0.0).is_empty());
    }
}
