//! Dependency-free JSON encode/decode for the telemetry layer.
//!
//! The run logger emits JSONL and the CLI `report` command reads it back;
//! with no serde available offline, this module provides the small JSON
//! subset both sides need: objects, arrays, strings, finite numbers, bools
//! and null. Numbers are emitted with enough precision to round-trip `f64`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys are sorted (BTreeMap) so encoding is
/// deterministic, which keeps golden tests stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Convenience object builder.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Field lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact (single-line) encoding.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // Shortest representation that round-trips f64.
                    let _ = write!(out, "{x}");
                    // `{}` prints integers without a dot; that is valid JSON.
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {}", *pos)),
                };
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let hex =
                                    b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                // Surrogate pairs are not needed by this
                                // workspace's event schema.
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar.
                        let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                        let c = rest
                            .chars()
                            .next()
                            .ok_or_else(|| "unterminated string".to_string())?;
                        s.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') => lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => lit(b, pos, "null", Json::Null),
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number '{text}' at byte {start}"))
        }
    }
}

fn lit(b: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = Json::obj(vec![
            ("event", Json::str("epoch_end")),
            ("ts", Json::Num(1.25)),
            ("n", Json::Num(42.0)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("arr", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
        ]);
        let text = v.encode();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn f64_precision_roundtrips() {
        for x in [0.1, 1e-9, 123456.789012345, f64::MAX, 5e-324] {
            let text = Json::Num(x).encode();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back, x, "{x} round-tripped to {back}");
        }
    }

    #[test]
    fn string_escapes() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        let text = v.encode();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("nulll").is_err());
    }

    #[test]
    fn parses_nested_whitespace() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn non_finite_encodes_as_null() {
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
    }
}
