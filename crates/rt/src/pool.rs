//! A fixed-size worker pool with explicit core pinning.
//!
//! ARGO separates the cores that run mini-batch sampling from the cores that
//! run model propagation (paper Section IV), so a global work-stealing pool
//! is the wrong abstraction: each stage of each process owns its own
//! [`ThreadPool`] built over an explicit [`CoreSet`].
//!
//! The pool supports `'static` task submission ([`ThreadPool::execute`]) and
//! scoped data-parallel loops ([`ThreadPool::parallel_for`] /
//! [`ThreadPool::parallel_chunks_mut`]) that block until every worker
//! finished, which makes borrowing local data sound.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};

use crate::affinity::{bind_current_thread, CoreSet};
use crate::racecheck;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Completion {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
    /// The join edge lives on a bare `fetch_sub`: only the *last* worker
    /// touches `lock`, so the race detector needs this explicit fork/join
    /// point to order every worker's writes before the waiter's return.
    sync: racecheck::SyncPoint,
}

impl Completion {
    fn new(n: usize) -> Self {
        Self {
            remaining: AtomicUsize::new(n),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            sync: racecheck::SyncPoint::new(),
        }
    }

    fn finish_one(&self) {
        self.sync.publish();
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.lock.lock();
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut g = self.lock.lock();
        while self.remaining.load(Ordering::Acquire) != 0 {
            self.cv.wait(&mut g);
        }
        drop(g);
        self.sync.acquire();
    }
}

/// A pool of worker threads pinned to a fixed core set.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    size: usize,
}

impl ThreadPool {
    /// Creates a pool with one worker per core in `cores`, each pinned to its
    /// core (when the OS supports it and the core exists on the host).
    pub fn pinned(name: &str, cores: &CoreSet) -> Self {
        assert!(!cores.is_empty(), "pool needs at least one core");
        Self::build(name, cores.len(), Some(cores.clone()))
    }

    /// Creates an unpinned pool with `size` workers.
    pub fn new(name: &str, size: usize) -> Self {
        assert!(size > 0, "pool needs at least one worker");
        Self::build(name, size, None)
    }

    fn build(name: &str, size: usize, cores: Option<CoreSet>) -> Self {
        let (sender, receiver) = unbounded::<Job>();
        let mut workers = Vec::with_capacity(size);
        for i in 0..size {
            let rx = receiver.clone();
            let pin = cores
                .as_ref()
                .map(|cs| CoreSet::new(vec![cs.ids()[i % cs.len()]]));
            let handle = std::thread::Builder::new()
                .name(format!("{name}-{i}"))
                .spawn(move || {
                    if let Some(cs) = pin {
                        let _ = bind_current_thread(&cs);
                    }
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn pool worker");
            workers.push(handle);
        }
        Self {
            sender: Some(sender),
            workers,
            size,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Submits a fire-and-forget task.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool alive")
            .send(Box::new(job))
            .expect("pool workers alive");
    }

    /// Runs `f(i)` for every `i in 0..n`, distributing contiguous chunks over
    /// the workers, and blocks until all iterations are complete.
    ///
    /// `f` may borrow from the caller's stack: the call does not return until
    /// every worker has finished, which keeps the (internally `unsafe`)
    /// lifetime extension sound.
    pub fn parallel_for<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.parallel_ranges(n, |range| {
            for i in range {
                f(i);
            }
        });
    }

    /// Runs `f(range)` over a partition of `0..n` into roughly equal
    /// contiguous ranges, one batch per worker. Blocks until done.
    pub fn parallel_ranges<F>(&self, n: usize, f: F)
    where
        F: Fn(std::ops::Range<usize>) + Sync,
    {
        if n == 0 {
            return;
        }
        let tasks = self.size.min(n);
        if tasks == 1 {
            f(0..n);
            return;
        }
        let completion = Arc::new(Completion::new(tasks));
        // SAFETY: we block on `completion.wait()` before returning, so the
        // borrowed closure outlives every worker's use of it.
        let f_static: &(dyn Fn(std::ops::Range<usize>) + Sync) = &f;
        let f_static: &'static (dyn Fn(std::ops::Range<usize>) + Sync) =
            unsafe { std::mem::transmute(f_static) };
        let chunk = n.div_ceil(tasks);
        for t in 0..tasks {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(n);
            if start >= end {
                completion.finish_one();
                continue;
            }
            let completion = Arc::clone(&completion);
            self.execute(move || {
                f_static(start..end);
                completion.finish_one();
            });
        }
        completion.wait();
    }

    /// Splits `data` into `self.size()` contiguous chunks and passes each
    /// `(chunk_index, chunk)` to `f` on a worker. Blocks until done.
    pub fn parallel_chunks_mut<T, F>(&self, data: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let n = data.len();
        if n == 0 {
            return;
        }
        let tasks = self.size.min(n);
        if tasks == 1 {
            f(0, data);
            return;
        }
        // `parallel_ranges` partitions 0..n into chunks of exactly this size,
        // so the ranges it hands out are precisely the chunks we want.
        let chunk = n.div_ceil(tasks);
        let base = data.as_mut_ptr() as usize;
        let shadow = racecheck::region("pool.parallel_chunks_mut", n);
        self.parallel_ranges(n, move |range| {
            let idx = range.start / chunk;
            racecheck::write(&shadow, range.start, range.len());
            // SAFETY: ranges from `parallel_ranges` are disjoint sub-ranges
            // of 0..n, so each reconstructed slice is a disjoint `&mut` view
            // into `data`, which outlives this blocking call.
            let slice = unsafe {
                std::slice::from_raw_parts_mut((base as *mut T).add(range.start), range.len())
            };
            f(idx, slice);
        });
    }

    /// Maps `map` over a partition of `0..n` into contiguous ranges (the
    /// same partition [`ThreadPool::parallel_ranges`] hands out) and folds
    /// the per-range results with `reduce` **on the calling thread, in
    /// ascending range order**. Returns `None` when `n == 0`.
    ///
    /// Workers only ever write their own result slot; the fold order depends
    /// solely on `n` and the pool size, never on thread scheduling — so for
    /// deterministic `map` the result is deterministic even when `reduce` is
    /// not associative/commutative (e.g. float accumulation). This is the
    /// primitive behind the pool-parallel `dW = Xᵀ dY` reduction in
    /// `argo-tensor`, where each worker produces a partial gradient over its
    /// row range.
    pub fn parallel_map_reduce<T, M, R>(&self, n: usize, map: M, mut reduce: R) -> Option<T>
    where
        T: Send,
        M: Fn(std::ops::Range<usize>) -> T + Sync,
        R: FnMut(T, T) -> T,
    {
        if n == 0 {
            return None;
        }
        let tasks = self.size.min(n);
        if tasks == 1 {
            return Some(map(0..n));
        }
        // `parallel_ranges` partitions 0..n with exactly this chunk size, so
        // `range.start / chunk` recovers a stable per-range slot index.
        let chunk = n.div_ceil(tasks);
        let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..tasks).map(|_| None).collect());
        self.parallel_ranges(n, |range| {
            let idx = range.start / chunk;
            let value = map(range);
            slots.lock()[idx] = Some(value);
        });
        let mut acc: Option<T> = None;
        for slot in slots.into_inner() {
            // Trailing empty ranges never ran `map`; their slots stay None.
            let Some(v) = slot else { continue };
            acc = Some(match acc {
                Some(a) => reduce(a, v),
                None => v,
            });
        }
        acc
    }

    /// Maps `f` over `0..n` in parallel and sums the results.
    pub fn parallel_sum<F>(&self, n: usize, f: F) -> f64
    where
        F: Fn(usize) -> f64 + Sync,
    {
        let partials = Mutex::new(0.0f64);
        self.parallel_ranges(n, |range| {
            let mut local = 0.0;
            for i in range {
                local += f(i);
            }
            *partials.lock() += local;
        });
        partials.into_inner()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_visits_every_index_once() {
        let pool = ThreadPool::new("t", 4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_for(1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_is_noop() {
        let pool = ThreadPool::new("t", 2);
        pool.parallel_for(0, |_| panic!("must not run"));
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let pool = ThreadPool::new("t", 3);
        let s = pool.parallel_sum(100, |i| i as f64);
        assert_eq!(s, (0..100).sum::<usize>() as f64);
    }

    #[test]
    fn parallel_chunks_mut_covers_all() {
        let pool = ThreadPool::new("t", 4);
        let mut v = vec![0u32; 137];
        pool.parallel_chunks_mut(&mut v, |_, chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn parallel_chunks_mut_chunk_indices_are_offsets() {
        let pool = ThreadPool::new("t", 4);
        let mut v = vec![0usize; 64];
        let chunk = 64usize.div_ceil(4);
        pool.parallel_chunks_mut(&mut v, |idx, c| {
            for (j, x) in c.iter_mut().enumerate() {
                *x = idx * chunk + j;
            }
        });
        let expect: Vec<usize> = (0..64).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn parallel_map_reduce_sums_match_serial() {
        let pool = ThreadPool::new("t", 4);
        let got =
            pool.parallel_map_reduce(1000, |r| r.map(|i| i as u64).sum::<u64>(), |a, b| a + b);
        assert_eq!(got, Some((0..1000u64).sum()));
    }

    #[test]
    fn parallel_map_reduce_empty_is_none() {
        let pool = ThreadPool::new("t", 3);
        let got = pool.parallel_map_reduce(0, |_| 1u32, |a, b| a + b);
        assert_eq!(got, None);
    }

    #[test]
    fn parallel_map_reduce_folds_in_range_order() {
        // The fold must see partials in ascending range order regardless of
        // which worker finishes first: reduce with a non-commutative op
        // (sequence concatenation) and check the result is sorted.
        let pool = ThreadPool::new("t", 4);
        for n in [1usize, 2, 7, 64, 137] {
            let got = pool
                .parallel_map_reduce(
                    n,
                    |r| r.collect::<Vec<usize>>(),
                    |mut a, b| {
                        a.extend(b);
                        a
                    },
                )
                .expect("n > 0");
            let expect: Vec<usize> = (0..n).collect();
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn parallel_map_reduce_float_accumulation_is_deterministic() {
        // Same pool size + same n → identical bits across repeated runs,
        // even though f32 addition is not associative.
        let pool = ThreadPool::new("t", 4);
        let run = || {
            pool.parallel_map_reduce(
                10_000,
                |r| r.map(|i| (i as f32).sin()).sum::<f32>(),
                |a, b| a + b,
            )
            .expect("n > 0")
        };
        let first = run();
        for _ in 0..5 {
            assert_eq!(first.to_bits(), run().to_bits());
        }
    }

    #[test]
    fn pinned_pool_runs() {
        let cores = CoreSet::range(0, 2);
        let pool = ThreadPool::pinned("p", &cores);
        assert_eq!(pool.size(), 2);
        let s = pool.parallel_sum(10, |i| i as f64);
        assert_eq!(s, 45.0);
    }

    #[test]
    fn execute_runs_detached_jobs() {
        let pool = ThreadPool::new("t", 2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // join workers
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn borrowing_local_data_is_sound() {
        let pool = ThreadPool::new("t", 4);
        let data: Vec<u64> = (0..512).collect();
        let total = Mutex::new(0u64);
        pool.parallel_ranges(data.len(), |r| {
            let local: u64 = data[r].iter().sum();
            *total.lock() += local;
        });
        assert_eq!(total.into_inner(), (0..512u64).sum::<u64>());
    }
}
