//! # argo-bench — the experiment harness
//!
//! One bench target per table/figure of the paper's evaluation (run with
//! `cargo bench --bench <name>`, or all of them with `cargo bench`). Each
//! prints the rows/series of its exhibit; EXPERIMENTS.md records paper-vs-
//! measured values.
//!
//! This library holds the shared task definitions.

use argo_graph::datasets::{DatasetSpec, FLICKR, OGBN_PAPERS100M, OGBN_PRODUCTS, REDDIT};
use argo_platform::{
    Library, ModelKind, PerfModel, PlatformSpec, SamplerKind, Setup, ICE_LAKE_8380H,
    SAPPHIRE_RAPIDS_6430L,
};

/// The four paper datasets in Table III order.
pub const DATASETS: [DatasetSpec; 4] = [FLICKR, REDDIT, OGBN_PRODUCTS, OGBN_PAPERS100M];

/// The two sampler-model pairings the paper evaluates.
pub const SAMPLER_MODELS: [(SamplerKind, ModelKind); 2] = [
    (SamplerKind::Neighbor, ModelKind::Sage),
    (SamplerKind::Shadow, ModelKind::Gcn),
];

/// The two platforms of Table II.
pub const PLATFORMS: [PlatformSpec; 2] = [ICE_LAKE_8380H, SAPPHIRE_RAPIDS_6430L];

/// Short platform tag used in printed tables.
pub fn platform_tag(p: &PlatformSpec) -> &'static str {
    if p.total_cores >= 100 {
        "Ice Lake 8380H"
    } else {
        "Sapphire Rapids 6430L"
    }
}

/// All 16 rows of Table IV/V for one library, in paper order.
pub fn table_rows(library: Library) -> Vec<PerfModel> {
    let mut out = Vec::new();
    for platform in PLATFORMS {
        for (sampler, model) in SAMPLER_MODELS {
            for dataset in DATASETS {
                out.push(PerfModel::new(Setup {
                    platform,
                    library,
                    sampler,
                    model,
                    dataset,
                }));
            }
        }
    }
    out
}

/// Prints Figure 10/11 — overall 200-epoch training time, library default
/// vs. ARGO (auto-tuning overhead and sub-optimal search epochs included),
/// for every task on both platforms.
pub fn overall_performance(library: Library) {
    use argo_core::{Argo, ArgoOptions};
    println!(
        "=== Figure {}: overall training time (200 epochs), {} vs {}+ARGO ===\n",
        if library == Library::Dgl { 10 } else { 11 },
        library.name(),
        library.name()
    );
    let mut max_speedup: f64 = 0.0;
    for platform in PLATFORMS {
        println!("-- {} --", platform_tag(&platform));
        println!(
            "{:<15} {:<16} {:>12} {:>12} {:>9}  ARGO config",
            "task", "dataset", "default (s)", "ARGO (s)", "speedup"
        );
        for (sampler, model) in SAMPLER_MODELS {
            for dataset in DATASETS {
                let m = PerfModel::new(Setup {
                    platform,
                    library,
                    sampler,
                    model,
                    dataset,
                });
                let n_search = argo_tune::paper_num_searches(
                    platform.total_cores,
                    matches!(sampler, SamplerKind::Shadow),
                );
                let default_total = 200.0 * m.epoch_time(m.default_config());
                let mut argo = Argo::new(ArgoOptions {
                    n_search,
                    epochs: 200,
                    total_cores: platform.total_cores,
                    seed: 7,
                });
                let report = argo.run_modeled(&m, None);
                let speedup = default_total / report.total_time;
                max_speedup = max_speedup.max(speedup);
                println!(
                    "{:<15} {:<16} {:>12.1} {:>12.1} {:>8.2}x  {}",
                    format!("{}-{}", sampler.name(), model.name()),
                    dataset.name,
                    default_total,
                    report.total_time,
                    speedup,
                    report.config_opt
                );
            }
        }
        println!();
    }
    println!(
        "max speedup: {max_speedup:.2}x (paper: up to 5.06x for ShaDow-GCN, 2.65x for Neighbor-SAGE)"
    );
}

/// Prints Table IV (DGL) or Table V (PyG) — epoch time of the configuration
/// found by Exhaustive / Default / Simulated Annealing / Auto-Tuner, with
/// the parenthesized value normalized to the exhaustive optimum. Random
/// algorithms are averaged over five seeded runs on the noisy objective,
/// exactly as the paper averages five experiment runs.
pub fn search_quality_table(library: Library) {
    use argo_tune::{BayesOpt, SearchSpace, Searcher, SimulatedAnnealing};
    println!(
        "=== Table {}: epoch time (sec) of the configuration found ({}) ===\n",
        if library == Library::Dgl { "IV" } else { "V" },
        library.name()
    );
    const RUNS: u64 = 5;
    for platform in PLATFORMS {
        println!("-- {} --", platform_tag(&platform));
        println!(
            "{:<15} {:<16} {:>11} {:>15} {:>22} {:>16}",
            "sampler-model", "dataset", "Exhaustive", "Default", "Sim. Anneal.", "Auto-Tuner"
        );
        for (sampler, model) in SAMPLER_MODELS {
            for dataset in DATASETS {
                let m = PerfModel::new(Setup {
                    platform,
                    library,
                    sampler,
                    model,
                    dataset,
                });
                let budget = argo_tune::paper_num_searches(
                    platform.total_cores,
                    matches!(sampler, SamplerKind::Shadow),
                );
                let space = SearchSpace::for_cores(platform.total_cores);
                // Exhaustive: true optimum of the deterministic surface.
                let exhaustive = m.argo_best_epoch_time(platform.total_cores).1;
                let default = m.epoch_time(m.default_config());
                // Baselines search the noisy surface, then the found config
                // is re-measured on the deterministic surface (the paper
                // reports the epoch time of the *found configuration*).
                let run_searcher = |mut s: Box<dyn Searcher>, seed: u64| -> f64 {
                    for i in 0..budget {
                        let c = s.suggest();
                        s.observe(c, m.epoch_time_noisy(c, seed.wrapping_mul(1000) + i as u64));
                    }
                    m.epoch_time(s.best().unwrap().0)
                };
                let sa: Vec<f64> = (0..RUNS)
                    .map(|seed| {
                        run_searcher(Box::new(SimulatedAnnealing::new(space.clone(), seed)), seed)
                    })
                    .collect();
                let bo: Vec<f64> = (0..RUNS)
                    .map(|seed| {
                        run_searcher(Box::new(BayesOpt::new(space.clone(), seed)), seed + 100)
                    })
                    .collect();
                let (sa_m, sa_s) = mean_std(&sa);
                let (bo_m, _) = mean_std(&bo);
                println!(
                    "{:<15} {:<16} {:>8.2}(1x) {:>8.2} ({:.2}x) {:>10.2}±{:<4.2} ({:.2}x) {:>8.2} ({:.2}x)",
                    format!("{}-{}", sampler.name(), model.name()),
                    dataset.name,
                    exhaustive,
                    default,
                    exhaustive / default,
                    sa_m,
                    sa_s,
                    exhaustive / sa_m,
                    bo_m,
                    exhaustive / bo_m,
                );
            }
        }
        println!();
    }
    println!("(x) = speed of the found configuration relative to the exhaustive optimum;");
    println!("the auto-tuner stays >=0.9x everywhere while exploring ~5% of the space.");
}

/// Renders a unit-interval value as a short ASCII bar.
pub fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

/// Mean and standard deviation of a sample.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    let n = xs.len().max(1) as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_rows_per_library() {
        assert_eq!(table_rows(Library::Dgl).len(), 16);
        assert_eq!(table_rows(Library::Pyg).len(), 16);
    }

    #[test]
    fn bar_renders() {
        assert_eq!(bar(0.5, 4), "##..");
        assert_eq!(bar(2.0, 3), "###");
        assert_eq!(bar(-1.0, 3), "...");
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0]);
        assert!((m - 3.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
