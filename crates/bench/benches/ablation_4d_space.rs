//! **Section VII-B extension** — higher-dimensional design spaces.
//!
//! The paper argues that greedy search-space pruning is viable on ARGO's
//! 3-D space but breaks down as dimensions grow, while the BayesOpt
//! auto-tuner extends naturally. This bench adds a fourth parallelization
//! parameter — the sampling pipeline's *prefetch depth* — on top of
//! (processes, sampling cores, training cores), builds the 4-D surface from
//! the platform model (prefetch trades memory footprint against pipeline
//! stalls), and compares a dimension-generic BayesOpt (GP over `[f64; 4]`)
//! against greedy per-axis pruning and random search at an equal budget.

use argo_bench::mean_std;
use argo_graph::datasets::REDDIT;
use argo_platform::{Library, ModelKind, PerfModel, SamplerKind, Setup, ICE_LAKE_8380H};
use argo_rt::{enumerate_space, Config};
use argo_tune::acquisition::expected_improvement;
use argo_tune::gp::GaussianProcess;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Prefetch depths considered (4th dimension).
const PREFETCH: [usize; 6] = [1, 2, 3, 4, 6, 8];

/// Epoch time of (config, prefetch): shallow prefetch stalls the pipeline
/// when sampling is slow relative to training; deep prefetch wastes memory
/// bandwidth on speculative batches.
fn objective(m: &PerfModel, c: Config, prefetch: usize) -> f64 {
    let base = m.epoch_time(c);
    let sample = m.sampling_time(c);
    let train = m.gather_time(c).max(m.compute_time(c));
    // Stall factor: needs roughly sample/train batches in flight.
    let needed = (sample / train.max(1e-9)).clamp(0.5, 8.0);
    let q = prefetch as f64;
    let stall = 1.0 + 0.06 * ((needed - q).max(0.0) / needed).powi(2) * (sample / (sample + train));
    let waste = 1.0 + 0.004 * (q - needed).max(0.0);
    base * stall * waste
}

type Point = (Config, usize);

fn full_space() -> Vec<Point> {
    let mut out = Vec::new();
    for c in enumerate_space(112) {
        for &q in &PREFETCH {
            out.push((c, q));
        }
    }
    out
}

fn normalize(p: &Point) -> [f64; 4] {
    [
        (p.0.n_proc as f64 - 2.0) / 6.0,
        (p.0.n_samp as f64 - 1.0) / 3.0,
        (p.0.n_train as f64 - 1.0) / 52.0,
        (p.1 as f64 - 1.0) / 7.0,
    ]
}

fn bayesopt_4d(m: &PerfModel, space: &[Point], budget: usize, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen: Vec<usize> = Vec::new();
    let mut x: Vec<[f64; 4]> = Vec::new();
    let mut y: Vec<f64> = Vec::new();
    for _ in 0..5.min(budget) {
        let i = rng.gen_range(0..space.len());
        seen.push(i);
        x.push(normalize(&space[i]));
        y.push(objective(m, space[i].0, space[i].1).ln());
    }
    while y.len() < budget {
        let gp: GaussianProcess<4> = GaussianProcess::fit(&x, &y);
        let best = y.iter().copied().fold(f64::INFINITY, f64::min);
        let mut top = (f64::NEG_INFINITY, 0usize);
        // Scan a strided subset for speed; the full space has ~4k points.
        for (i, p) in space.iter().enumerate() {
            if seen.contains(&i) {
                continue;
            }
            let (mean, std) = gp.predict(&normalize(p));
            let ei = expected_improvement(mean, std, best, 0.01);
            if ei > top.0 {
                top = (ei, i);
            }
        }
        let i = top.1;
        seen.push(i);
        x.push(normalize(&space[i]));
        y.push(objective(m, space[i].0, space[i].1).ln());
    }
    y.iter().copied().fold(f64::INFINITY, f64::min).exp()
}

fn pruning_4d(m: &PerfModel, budget: usize) -> f64 {
    // Greedy per-axis halving over (p, s, t, q): probes 2·dims + 1 points per
    // round — probe count per round grows linearly, rounds needed grow with
    // dimension, and the axis-independence assumption starts to bite.
    let mut lo = [2i64, 1, 1, 0];
    let mut hi = [8i64, 4, 53, (PREFETCH.len() - 1) as i64];
    let clamp_point = |v: [i64; 4]| -> (Config, usize) {
        let space = argo_tune::SearchSpace::for_cores(112);
        let c = space.project(v[0], v[1], v[2]);
        let q = PREFETCH[(v[3].clamp(0, (PREFETCH.len() - 1) as i64)) as usize];
        (c, q)
    };
    let mut best = f64::INFINITY;
    let mut evals = 0usize;
    while evals < budget {
        let mid = [
            (lo[0] + hi[0]) / 2,
            (lo[1] + hi[1]) / 2,
            (lo[2] + hi[2]) / 2,
            (lo[3] + hi[3]) / 2,
        ];
        let mut probes = vec![mid];
        for d in 0..4 {
            let mut a = mid;
            a[d] = lo[d];
            let mut b = mid;
            b[d] = hi[d];
            probes.push(a);
            probes.push(b);
        }
        let mut round_best: Option<([i64; 4], f64)> = None;
        for pr in probes {
            if evals >= budget {
                break;
            }
            let (c, q) = clamp_point(pr);
            let t = objective(m, c, q);
            evals += 1;
            best = best.min(t);
            if round_best.as_ref().is_none_or(|(_, bt)| t < *bt) {
                round_best = Some((pr, t));
            }
        }
        if let Some((center, _)) = round_best {
            for d in 0..4 {
                let span = ((hi[d] - lo[d]) / 2).max(1);
                lo[d] = (center[d] - span / 2).max(lo[d]);
                hi[d] = (center[d] + (span + 1) / 2).min(hi[d]);
            }
        }
        if lo == hi {
            break;
        }
    }
    best
}

fn random_4d(m: &PerfModel, space: &[Point], budget: usize, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..budget)
        .map(|_| {
            let p = &space[rng.gen_range(0..space.len())];
            objective(m, p.0, p.1)
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    println!("=== Section VII-B extension: 4-D design space (+ prefetch depth) ===\n");
    let m = PerfModel::new(Setup {
        platform: ICE_LAKE_8380H,
        library: Library::Dgl,
        sampler: SamplerKind::Shadow, // sampling-bound: prefetch matters
        model: ModelKind::Gcn,
        dataset: REDDIT,
    });
    let space = full_space();
    println!(
        "space size: {} points (3-D space × {} prefetch depths)",
        space.len(),
        PREFETCH.len()
    );
    let optimal = space
        .iter()
        .map(|p| objective(&m, p.0, p.1))
        .fold(f64::INFINITY, f64::min);
    println!("exhaustive optimum: {optimal:.2}s\n");
    let budget = 45; // the paper's ShaDow budget, now on a 6x larger space
    println!(
        "budget: {budget} evaluations ({:.1}% of the 4-D space)\n",
        100.0 * budget as f64 / space.len() as f64
    );

    let bo: Vec<f64> = (0..3).map(|s| bayesopt_4d(&m, &space, budget, s)).collect();
    let (bo_mean, bo_std) = mean_std(&bo);
    println!(
        "BayesOpt (GP over [f64;4]):  {bo_mean:.2}s±{bo_std:.2}  ({:.2}x of optimal)",
        optimal / bo_mean
    );

    let pruned = pruning_4d(&m, budget);
    println!(
        "greedy 4-D pruning:          {pruned:.2}s  ({:.2}x of optimal)",
        optimal / pruned
    );

    let rnd: Vec<f64> = (0..3)
        .map(|s| random_4d(&m, &space, budget, 100 + s))
        .collect();
    let (r_mean, r_std) = mean_std(&rnd);
    println!(
        "random search:               {r_mean:.2}s±{r_std:.2}  ({:.2}x of optimal)",
        optimal / r_mean
    );

    assert!(
        optimal / bo_mean >= 0.9,
        "BayesOpt must stay near-optimal in 4-D"
    );
    assert!(bo_mean <= r_mean * 1.01, "BayesOpt must beat random search");
    println!("\nBayesOpt keeps its sample efficiency as the dimension grows, while the");
    println!("pruning heuristic must spend its budget probing every axis — the paper's");
    println!("argument for the auto-tuning approach (Section VII-B).");
}
