//! **Auto-tuner ablation** — acquisition-function choice.
//!
//! The paper's auto-tuner uses an acquisition function that "balances
//! exploration … and exploitation" (Section V-C) without naming it;
//! scikit-optimize's default is Expected Improvement. This ablation swaps
//! EI for Lower Confidence Bound, Probability of Improvement and pure
//! greedy-mean under the paper's search budget, on the noisy modeled
//! surface, across four representative tasks.

use argo_bench::mean_std;
use argo_graph::datasets::{OGBN_PAPERS100M, OGBN_PRODUCTS, REDDIT};
use argo_platform::{Library, ModelKind, PerfModel, SamplerKind, Setup, ICE_LAKE_8380H};
use argo_tune::acquisition::Acquisition;
use argo_tune::{paper_num_searches, BayesOpt, SearchSpace, Searcher};

fn main() {
    println!("=== Ablation: acquisition function of the auto-tuner ===\n");
    let tasks = [
        (SamplerKind::Neighbor, ModelKind::Sage, REDDIT),
        (SamplerKind::Neighbor, ModelKind::Sage, OGBN_PAPERS100M),
        (SamplerKind::Shadow, ModelKind::Gcn, REDDIT),
        (SamplerKind::Shadow, ModelKind::Gcn, OGBN_PRODUCTS),
    ];
    let acqs = [
        Acquisition::ExpectedImprovement,
        Acquisition::LowerConfidenceBound,
        Acquisition::ProbabilityOfImprovement,
        Acquisition::GreedyMean,
    ];
    println!(
        "{:<28} {:>14} {:>14} {:>14} {:>14}",
        "task (Ice Lake, DGL)", "EI", "LCB", "PI", "greedy-mean"
    );
    let mut ei_total = 0.0;
    let mut greedy_total = 0.0;
    for (sampler, model, dataset) in tasks {
        let m = PerfModel::new(Setup {
            platform: ICE_LAKE_8380H,
            library: Library::Dgl,
            sampler,
            model,
            dataset,
        });
        let budget = paper_num_searches(112, matches!(sampler, SamplerKind::Shadow));
        let optimal = m.argo_best_epoch_time(112).1;
        let mut cells = Vec::new();
        for acq in acqs {
            let runs: Vec<f64> = (0..5u64)
                .map(|seed| {
                    let mut bo =
                        BayesOpt::new(SearchSpace::for_cores(112), seed).with_acquisition(acq);
                    for i in 0..budget {
                        let c = bo.suggest();
                        bo.observe(c, m.epoch_time_noisy(c, seed * 977 + i as u64));
                    }
                    m.epoch_time(bo.best().unwrap().0)
                })
                .collect();
            let (mean, _) = mean_std(&runs);
            cells.push(optimal / mean);
            match acq {
                Acquisition::ExpectedImprovement => ei_total += optimal / mean,
                Acquisition::GreedyMean => greedy_total += optimal / mean,
                _ => {}
            }
        }
        println!(
            "{:<28} {:>13.2}x {:>13.2}x {:>13.2}x {:>13.2}x",
            format!("{}-{} {}", sampler.name(), model.name(), dataset.name),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }
    println!("\n(values: speed of the found configuration relative to the exhaustive optimum,");
    println!(" mean of 5 seeded runs at the paper's 5-6% budget)");
    assert!(
        ei_total >= greedy_total - 0.1,
        "EI should not lose to pure exploitation overall"
    );
    println!("\nExploration-aware acquisitions (EI/LCB/PI) all stay near-optimal; pure");
    println!("exploitation can lock onto an early local basin — the reason BayesOpt needs");
    println!("an exploration term (paper Section V-C).");
}
