//! **Figures 5–6** — workload (number of sampled edges) and memory-bandwidth
//! utilization vs. the number of processes, Neighbor-SAGE on ogbn-products.
//!
//! Two parts:
//! 1. *modeled* at paper scale (the exact Figure 6 axes);
//! 2. *measured* on a real scaled-down synthetic products graph by actually
//!    sampling one epoch per process count — demonstrating the Figure 5
//!    shared-neighbor effect end to end.

use argo_bench::bar;
use argo_graph::datasets::OGBN_PRODUCTS;
use argo_platform::{Library, ModelKind, PerfModel, SamplerKind, Setup, ICE_LAKE_8380H};
use argo_rt::Config;
use argo_sample::{stats::epoch_workload, NeighborSampler};

fn main() {
    println!("=== Figure 6: workload and bandwidth vs number of processes ===\n");
    let model = PerfModel::new(Setup {
        platform: ICE_LAKE_8380H,
        library: Library::Dgl,
        sampler: SamplerKind::Neighbor,
        model: ModelKind::Sage,
        dataset: OGBN_PRODUCTS,
    });
    let w = model.setup().workload();
    println!("(modeled, paper scale: ogbn-products, batch 1024, Ice Lake)");
    println!(
        "{:>6} {:>16} {:>10} | {:>9} {:>24}",
        "procs", "epoch edges", "rel", "bw util", ""
    );
    let base = w.epoch_edges(1);
    for p in [1usize, 2, 4, 6, 8, 10, 12, 16] {
        let edges = w.epoch_edges(p);
        // Bandwidth utilization measured at a representative allocation.
        let t = (112 / p).saturating_sub(2).max(1);
        let util = model.bandwidth_utilization(Config::new(p, 2.min(t), t));
        println!(
            "{:>6} {:>16.3e} {:>9.2}x | {:>8.1}% {}",
            p,
            edges,
            edges / base,
            util * 100.0,
            bar(util, 24)
        );
    }

    println!("\n(measured: synthetic power-law products at 0.4% scale, real NeighborSampler)");
    let d = OGBN_PRODUCTS.synthesize(0.004, 11);
    let sampler = NeighborSampler::paper_default();
    let seeds = &d.train_nodes;
    let global_batch = 256;
    println!(
        "{:>6} {:>14} {:>10} {:>14}",
        "procs", "edges", "rel", "input nodes"
    );
    let base = epoch_workload(&d.graph, &sampler, seeds, global_batch, 1, 5);
    let mut last_rel = 0.0;
    for p in [1usize, 2, 4, 8, 16] {
        let ws = epoch_workload(&d.graph, &sampler, seeds, global_batch, p, 5);
        last_rel = ws.edges as f64 / base.edges as f64;
        println!(
            "{:>6} {:>14} {:>9.2}x {:>14}",
            p, ws.edges, last_rel, ws.input_nodes
        );
    }
    assert!(
        last_rel > 1.02,
        "measured workload must grow with the process count (got {last_rel:.3}x at 16 procs)"
    );
    println!(
        "\nBoth curves rise with the process count while bandwidth flattens after ~8 processes,"
    );
    println!("matching the paper's Figure 6 trade-off.");
}
