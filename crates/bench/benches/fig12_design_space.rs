//! **Figure 12** — the design space: performance under every configuration,
//! Neighbor-SAGE on Reddit (the paper's example), Ice Lake. For 2-D display
//! the third axis (training cores) is reduced by taking the best value per
//! (processes, sampling cores) cell; the full space statistics are printed
//! below.

use argo_bench::bar;
use argo_graph::datasets::REDDIT;
use argo_platform::{Library, ModelKind, PerfModel, SamplerKind, Setup, ICE_LAKE_8380H};
use argo_rt::enumerate_space;

fn main() {
    println!("=== Figure 12: performance under all configurations (Neighbor-SAGE, Reddit, Ice Lake) ===\n");
    let m = PerfModel::new(Setup {
        platform: ICE_LAKE_8380H,
        library: Library::Dgl,
        sampler: SamplerKind::Neighbor,
        model: ModelKind::Sage,
        dataset: REDDIT,
    });
    let space = enumerate_space(112);
    let times: Vec<f64> = space.iter().map(|&c| m.epoch_time(c)).collect();
    let tmin = times.iter().copied().fold(f64::INFINITY, f64::min);
    let tmax = times.iter().copied().fold(0.0f64, f64::max);

    println!("best-over-training-cores epoch time (s) per (processes x sampling cores):");
    print!("{:>10}", "samp\\proc");
    for p in 2..=8usize {
        print!("{p:>8}");
    }
    println!();
    for s in 1..=4usize {
        print!("{s:>10}");
        for p in 2..=8usize {
            let best = space
                .iter()
                .zip(&times)
                .filter(|(c, _)| c.n_proc == p && c.n_samp == s)
                .map(|(_, t)| *t)
                .fold(f64::INFINITY, f64::min);
            if best.is_finite() {
                print!("{best:>8.2}");
            } else {
                print!("{:>8}", "-");
            }
        }
        println!();
    }

    // Distribution over the full 3-D space (what the exhaustive search
    // walks through).
    println!("\nfull space: {} configurations", space.len());
    println!(
        "epoch time range: {tmin:.2}s (optimal) .. {tmax:.2}s (worst), spread {:.1}x",
        tmax / tmin
    );
    println!("\nhistogram of epoch times across the space:");
    let bins = 12usize;
    let mut counts = vec![0usize; bins];
    for &t in &times {
        let b = (((t - tmin) / (tmax - tmin + 1e-12)) * bins as f64) as usize;
        counts[b.min(bins - 1)] += 1;
    }
    let cmax = *counts.iter().max().unwrap();
    for (b, &c) in counts.iter().enumerate() {
        let lo = tmin + (tmax - tmin) * b as f64 / bins as f64;
        let hi = tmin + (tmax - tmin) * (b + 1) as f64 / bins as f64;
        println!(
            "  {lo:>7.2}-{hi:<7.2} {:>4} {}",
            c,
            bar(c as f64 / cmax as f64, 40)
        );
    }
    let within_5pct = times.iter().filter(|&&t| t <= tmin * 1.05).count();
    println!(
        "\nconfigurations within 5% of optimal: {} / {} ({:.1}%) — the surface is smooth but",
        within_5pct,
        space.len(),
        100.0 * within_5pct as f64 / space.len() as f64
    );
    println!("the optimum basin is small, which is why blind/default choices lose (Table IV).");
}
