//! **Figure 10** — overall training time (200 epochs) of DGL vs DGL+ARGO
//! across all eight tasks on both platforms; the end-to-end ARGO time
//! includes the online-learning overhead and the sub-optimal search epochs.

fn main() {
    argo_bench::overall_performance(argo_platform::Library::Dgl);
}
