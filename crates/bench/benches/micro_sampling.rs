//! Micro-benchmark of the sampling hot path: the pre-scratch serial
//! reference (per-batch `HashMap` relabeling plus full-neighbor-list copies
//! with a partial Fisher–Yates) vs the scratch-arena sampler vs the
//! scratch-arena sampler with a 2-worker pick pool.
//!
//! Emits machine-readable `BENCH_sampling.json` at the repository root
//! (seeds/s and sampled-edges/s per variant, speedup vs the reference) so
//! future PRs can diff sampling throughput against this baseline.
//!
//! `ARGO_BENCH_QUICK=1` switches to a fast CI mode: smaller graph, fewer
//! samples, and a sanity perf gate — the process exits non-zero if the
//! scratch sampler is slower than the serial reference (generous 1.0×
//! threshold; the pool column is *recorded* but never gated, since CI may
//! have a single core).

use std::collections::HashMap;
use std::time::Instant;

use argo_graph::generators::power_law;
use argo_graph::{Graph, NodeId};
use argo_rt::json::Json;
use argo_rt::spans::{Role, SpanKind, SpanProfiler};
use argo_rt::{SeedSequence, ThreadPool};
use argo_sample::{legacy, NeighborSampler, Normalization, SampleRun, Sampler, SamplerScratch};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Minimum wall-clock seconds across `samples` runs (after one warmup).
fn time_min<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut sink = f(); // warmup; also keeps the result observable
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t = Instant::now();
        sink = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    std::hint::black_box(sink);
    best
}

/// The pre-scratch sampler, preserved here as the timing reference: per
/// layer it clones the frontier, relabels through a freshly allocated
/// `HashMap`, and picks neighbors by copying each node's *entire* neighbor
/// slice and running a partial Fisher–Yates over it — O(degree) work and a
/// degree-sized allocation per row, which is exactly what hurts on
/// power-law hubs. Returns `(total sampled edges, metadata bytes)` — the
/// bytes counting the separate node-id / edge-index / row-pointer `Vec`s
/// this layout shuffles per batch.
fn reference_sample(
    g: &Graph,
    seeds: &[NodeId],
    fanouts: &[usize],
    rng: &mut SmallRng,
) -> (usize, usize) {
    let mut dst: Vec<NodeId> = seeds.to_vec();
    let mut total = 0usize;
    let mut bytes = 0usize;
    for &fanout in fanouts.iter().rev() {
        let mut src = dst.clone();
        let mut relabel: HashMap<NodeId, u32> = HashMap::new();
        for (i, &v) in src.iter().enumerate() {
            relabel.insert(v, i as u32);
        }
        let mut indices: Vec<u32> = Vec::new();
        let mut indptr = vec![0usize];
        for &v in &dst {
            let mut pool: Vec<NodeId> = g.neighbors(v).to_vec();
            let take = fanout.min(pool.len());
            for j in 0..take {
                let k = rng.gen_range(j..pool.len());
                pool.swap(j, k);
            }
            for &u in &pool[..take] {
                let next = src.len() as u32;
                let id = *relabel.entry(u).or_insert_with(|| {
                    src.push(u);
                    next
                });
                indices.push(id);
            }
            indptr.push(indices.len());
        }
        total += indices.len();
        bytes += 4 * src.len() + 4 * indices.len() + 8 * indptr.len();
        std::hint::black_box(&indptr);
        dst = src;
    }
    (total, bytes)
}

struct SampRow {
    name: &'static str,
    seeds_per_s: f64,
    edges_per_s: f64,
    batch_ms: f64,
    speedup: f64,
    ns_per_edge: f64,
    metadata_bytes: usize,
}

impl SampRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(self.name)),
            ("batch_ms", Json::Num(self.batch_ms)),
            ("seeds_per_s", Json::Num(self.seeds_per_s)),
            ("edges_per_s", Json::Num(self.edges_per_s)),
            ("speedup_vs_serial", Json::Num(self.speedup)),
            ("ns_per_edge", Json::Num(self.ns_per_edge)),
            (
                "metadata_bytes_per_batch",
                Json::Num(self.metadata_bytes as f64),
            ),
        ])
    }
}

fn main() {
    let quick = std::env::var("ARGO_BENCH_QUICK").is_ok_and(|v| v == "1");
    if quick {
        // The CI perf gate must measure the *uninstrumented* hot path: the
        // race detector's shadow-memory annotations are supposed to be
        // zero-cost no-ops unless the `race` feature is compiled in, and
        // this is where that claim is enforced.
        assert!(
            !argo_rt::racecheck::enabled(),
            "quick perf gate built with the `race` feature: timings would \
             include detector overhead"
        );
    }
    let samples = if quick { 3 } else { 8 };
    let (nodes, edges) = if quick {
        (20_000, 200_000)
    } else {
        (100_000, 1_000_000)
    };
    // Heavy-tailed degrees: hub rows are where full-neighbor-copy loses to
    // Floyd position sampling.
    let graph = power_law(nodes, edges, 0.8, 11);
    let fanouts = vec![15usize, 10];
    let n_seeds = if quick { 512 } else { 1024 };
    let seeds: Vec<NodeId> = (0..n_seeds as u32).collect();
    let sampler = NeighborSampler::new(fanouts.clone());

    // -- Serial reference (pre-scratch allocation behavior). --
    let mut rng = SmallRng::seed_from_u64(17);
    let serial_s = time_min(samples, || {
        reference_sample(&graph, &seeds, &fanouts, &mut rng)
    });
    let (ref_edges, ref_bytes) = reference_sample(&graph, &seeds, &fanouts, &mut rng);

    // -- Scratch arena, steady state: one warm arena reused per batch, owned
    // batch materialized from it (the loader's reorder-channel handoff). --
    let mut scratch = SamplerScratch::new();
    let stream = SeedSequence::new(17);
    let scratch_s = time_min(samples, || {
        let run = SampleRun::new(stream, &mut scratch);
        sampler.sample_with(&graph, &seeds, run)
    });
    let run = SampleRun::new(stream, &mut scratch);
    let batch = sampler.sample_with(&graph, &seeds, run);
    let scratch_edges = batch.total_edges(fanouts.len());

    // -- Fused arena view: assembly lands in the arena CSR and is consumed
    // in place (the serving path) — no owned materialization at all. --
    let mut view_scratch = SamplerScratch::new();
    let view_s = time_min(samples, || {
        let run = SampleRun::new(stream, &mut view_scratch);
        let view = sampler.sample_into(&graph, &seeds, run);
        std::hint::black_box(view.total_edges(2));
    });
    let run = SampleRun::new(stream, &mut view_scratch);
    let view_bytes = sampler.sample_into(&graph, &seeds, run).metadata_bytes();

    // -- Scratch arena + 2-worker pick pool (content-identical batches). --
    let pool = ThreadPool::new("samp", 2);
    let mut pool_scratch = SamplerScratch::new();
    let pool_s = time_min(samples, || {
        let run = SampleRun::new(stream, &mut pool_scratch).with_pool(Some(&pool));
        sampler.sample_with(&graph, &seeds, run)
    });

    // -- Span-profiler overhead: the steady-state scratch loop with an
    // enabled profiler recording one begin/end pair per batch, vs the bare
    // loop. The pair is what the loader pays per stage, so this bounds the
    // observability tax on the hot path. Off/on timings are *interleaved*
    // (alternating single timed executions, min of each) so background load
    // drift on a shared runner hits both sides equally instead of skewing
    // whichever loop ran second. --
    let profiler = SpanProfiler::new();
    let ring = profiler.ring(Role::Producer);
    let mut prof_scratch = SamplerScratch::new();
    let mut run_off = || {
        let run = SampleRun::new(stream, &mut prof_scratch);
        sampler.sample_with(&graph, &seeds, run)
    };
    std::hint::black_box(run_off()); // warm the arena
    let (mut off_s, mut on_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..samples.max(8) {
        let t = Instant::now();
        std::hint::black_box(run_off());
        off_s = off_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let span = ring.span_begin(SpanKind::Pick, 0);
        std::hint::black_box(run_off());
        ring.span_end(span);
        on_s = on_s.min(t.elapsed().as_secs_f64());
    }
    let span_overhead_pct = (on_s / off_s - 1.0) * 100.0;

    // -- Batch assembly in isolation: the legacy edge-list build (owned
    // `Vec`s + COO-style relabel + validating `SparseMatrix::new`) vs the
    // fused arena-CSR build, over an *identical* pre-discovered node set on
    // 1 core. This isolates the metadata tax the fused path removes from
    // the (shared) discovery and pick phases. --
    let asm_seeds: Vec<NodeId> = (0..if quick { 256u32 } else { 512 }).collect();
    let mut asm_scratch = SamplerScratch::new();
    let asm_nodes = legacy::bench_discover(
        &graph,
        &asm_seeds,
        vec![10, 5],
        SeedSequence::new(23),
        &mut asm_scratch,
    );
    let asm_legacy_s = time_min(samples.max(8), || {
        legacy::bench_assembly_legacy(
            &graph,
            &asm_nodes,
            asm_seeds.len(),
            &mut asm_scratch,
            Normalization::Gcn,
        )
    });
    let asm_arena_s = time_min(samples.max(8), || {
        legacy::bench_assembly_arena(
            &graph,
            &asm_nodes,
            asm_seeds.len(),
            &mut asm_scratch,
            Normalization::Gcn,
        )
    });
    let asm_nnz = legacy::bench_assembly_arena(
        &graph,
        &asm_nodes,
        asm_seeds.len(),
        &mut asm_scratch,
        Normalization::Gcn,
    );
    let assembly_speedup = asm_legacy_s / asm_arena_s;
    let assembly_ns_per_edge = asm_arena_s * 1e9 / asm_nnz as f64;

    let row = |name: &'static str, secs: f64, edges: usize, bytes: usize| SampRow {
        name,
        seeds_per_s: n_seeds as f64 / secs,
        edges_per_s: edges as f64 / secs,
        batch_ms: secs * 1e3,
        speedup: serial_s / secs,
        ns_per_edge: secs * 1e9 / edges as f64,
        metadata_bytes: bytes,
    };
    let rows = [
        row("serial_reference", serial_s, ref_edges, ref_bytes),
        row("scratch", scratch_s, scratch_edges, view_bytes),
        row("scratch_view", view_s, scratch_edges, view_bytes),
        row("scratch_pool2", pool_s, scratch_edges, view_bytes),
    ];

    // -- Report. --
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("=== micro_sampling (quick={quick}, host_threads={host_threads}) ===\n");
    println!(
        "graph: power_law {nodes} nodes / {edges} edges, fanouts {fanouts:?}, {n_seeds} seeds\n"
    );
    println!(
        "{:<18} {:>10} {:>14} {:>16} {:>8} {:>9} {:>12}",
        "variant", "batch ms", "seeds/s", "edges/s", "x serial", "ns/edge", "meta KB"
    );
    for r in &rows {
        println!(
            "{:<18} {:>10.3} {:>14.0} {:>16.0} {:>8.2} {:>9.2} {:>12.1}",
            r.name,
            r.batch_ms,
            r.seeds_per_s,
            r.edges_per_s,
            r.speedup,
            r.ns_per_edge,
            r.metadata_bytes as f64 / 1e3
        );
    }
    println!(
        "\nassembly (1 core, {} nodes, {} nnz): legacy {:.3}ms, arena {:.3}ms \
         ({assembly_speedup:.2}x, {assembly_ns_per_edge:.2} ns/edge)",
        asm_nodes.len(),
        asm_nnz,
        asm_legacy_s * 1e3,
        asm_arena_s * 1e3,
    );
    println!(
        "\nspan profiler overhead: {span_overhead_pct:+.2}% \
         ({:.3}ms with spans vs {:.3}ms without, interleaved; {} spans recorded)",
        on_s * 1e3,
        off_s * 1e3,
        profiler.drain().records.len()
    );

    let json = Json::obj(vec![
        ("host_threads", Json::Num(host_threads as f64)),
        ("quick", Json::Bool(quick)),
        ("span_overhead_pct", Json::Num(span_overhead_pct)),
        ("graph_nodes", Json::Num(nodes as f64)),
        ("graph_edges", Json::Num(edges as f64)),
        ("n_seeds", Json::Num(n_seeds as f64)),
        (
            "fanouts",
            Json::Arr(fanouts.iter().map(|&f| Json::Num(f as f64)).collect()),
        ),
        (
            "variants",
            Json::Arr(rows.iter().map(SampRow::to_json).collect()),
        ),
        // The two lower-is-better gated metrics (`argo perf diff` pairs
        // them against the committed baseline with the standard tolerance):
        // the fused arena assembly cost per sampled edge, and the compact
        // arena metadata footprint of the steady-state batch.
        ("assembly_ns_per_edge", Json::Num(assembly_ns_per_edge)),
        ("metadata_bytes_per_batch", Json::Num(view_bytes as f64)),
        ("assembly_speedup_vs_legacy", Json::Num(assembly_speedup)),
    ]);
    // Quick (CI) runs land in target/ so they never dirty the committed
    // full-mode baseline at the repository root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out_path = if quick {
        root.join("target/BENCH_sampling.quick.json")
    } else {
        root.join("BENCH_sampling.json")
    };
    match std::fs::write(&out_path, json.encode() + "\n") {
        Ok(()) => println!("\nbaseline written to {}", out_path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", out_path.display()),
    }

    // -- Quick-mode perf gate: the scratch sampler must not lose to the
    // pre-scratch reference. The pool column is informational only. --
    if quick {
        let speedup = serial_s / scratch_s;
        if speedup < 1.0 {
            eprintln!(
                "PERF GATE: scratch sampler is slower than the serial reference \
                 ({speedup:.2}x < required 1.00x)"
            );
            std::process::exit(1);
        }
        println!("perf gate OK: scratch sampler at {speedup:.2}x vs serial reference");
        // Observability must stay effectively free: one span pair per batch
        // may not cost more than 5% of the bare sampling loop.
        if span_overhead_pct > 5.0 {
            eprintln!(
                "PERF GATE: span profiler overhead {span_overhead_pct:.2}% exceeds the 5% budget"
            );
            std::process::exit(1);
        }
        println!("perf gate OK: span profiler overhead {span_overhead_pct:+.2}% (budget 5%)");
        // The fused arena-CSR assembly must beat the legacy edge-list
        // assembly outright even on a noisy CI core (the full-mode bar is
        // 1.5x; quick mode uses a generous floor and leaves the ns/edge
        // regression gate to `argo perf diff --quick` vs the committed
        // quick baseline).
        if assembly_speedup < 1.0 {
            eprintln!(
                "PERF GATE: arena assembly is slower than legacy edge-list assembly \
                 ({assembly_speedup:.2}x < required 1.00x)"
            );
            std::process::exit(1);
        }
        println!("perf gate OK: arena assembly at {assembly_speedup:.2}x vs legacy");
    } else {
        // Full mode regenerates the committed baseline; the tentpole
        // acceptance bar is a >= 1.5x batch-assembly improvement on 1 core.
        if assembly_speedup < 1.5 {
            eprintln!(
                "PERF GATE: arena assembly speedup {assembly_speedup:.2}x is below the \
                 1.5x acceptance bar"
            );
            std::process::exit(1);
        }
        println!("\nperf gate OK: arena assembly at {assembly_speedup:.2}x vs legacy (bar 1.5x)");
    }
}
