//! Serving benchmark: qps-vs-p99 curves plus a closed-loop load generator
//! over the real `argo-serve` session.
//!
//! Two halves, two kinds of evidence:
//!
//! 1. **Simulated open-loop curve (deterministic).** The platform model's
//!    `predicted_request_seconds` supplies micro-batch service times to
//!    `argo-tune`'s [`ServeObjective`]; the same BayesOpt loop that tunes
//!    epoch time then tunes p99 latency. The artifact records the p99 of
//!    the library-default configuration vs the tuned one across a qps
//!    sweep — a pure function of the seeds, so the ratio is byte-stable
//!    across hosts and safe to gate in CI.
//!
//! 2. **Closed-loop measured load (structural).** A real [`ServeSession`]
//!    on a synthetic Flickr slice answers a Zipf-flavored query mix with
//!    repeats; after one warm-up pass the layered result cache must serve
//!    over 90% of requests. The hit rate is a function of the request mix and
//!    cache capacity — not the clock — so it gates cleanly on a 1-core
//!    runner; latency percentiles are recorded as context only.
//!
//! Emits `BENCH_serving.json` at the repository root (full mode) or
//! `target/BENCH_serving.quick.json` (ARGO_BENCH_QUICK=1), diffed by
//! `argo perf-diff` against the committed baselines.

use std::sync::Arc;
use std::time::Instant;

use argo_graph::datasets::FLICKR;
use argo_graph::NodeId;
use argo_nn::{AnyModel, Arch};
use argo_platform::PerfModel;
use argo_rt::json::Json;
use argo_rt::{Config, StreamRng};
use argo_sample::{NeighborSampler, Normalization};
use argo_serve::ServeSpec;
use argo_tune::{BayesOpt, OnlineAutoTuner, SearchSpace, Searcher, ServeObjective, ServeWorkload};

/// Cores of the modeled inference slice: a 16-core partition of the paper's
/// Ice Lake box, a realistic serving reservation.
const SERVE_CORES: usize = 16;

fn nearest_rank_ms(samples: &mut [f64], q: f64) -> f64 {
    samples.sort_by(f64::total_cmp);
    let idx = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
    samples[idx] * 1e3
}

fn main() {
    let quick = std::env::var("ARGO_BENCH_QUICK").is_ok_and(|v| v == "1");
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("=== micro_serving (quick={quick}, host_threads={host_threads}) ===\n");

    // ---- 1. Simulated open-loop qps-vs-p99 (deterministic) ------------
    let model = PerfModel::builder().build(); // Neighbor-SAGE / Flickr / DGL
    let num_requests = if quick { 600 } else { 4_000 };
    let workload_at = |qps: f64| ServeWorkload {
        qps,
        num_requests,
        max_batch: 8,
        deadline_us: 2_000,
        seed: 0x5EED,
    };
    let service = |config: Config, batch: usize| model.predicted_request_seconds(config, batch);

    // Library default on the slice: 1 process, 4 sampling workers, the rest
    // training threads, no cross-batch cache — the same shape as
    // `PerfModel::default_config`, restricted to the serving reservation.
    let default_config = Config::new(1, 4.min(SERVE_CORES - 1), SERVE_CORES - 4);

    // Tune p99 near the default configuration's saturation point — the
    // regime where configuration actually moves the tail (at low load every
    // config hides behind the admission deadline). The cache axis is part
    // of the serving space: resident feature rows cut the gather term. The
    // searcher is warm-started with the incumbent default, standard
    // practice for online tuning of a live service — the tuner can only
    // improve on what is already running.
    let nodes = FLICKR.num_nodes;
    let space = SearchSpace::for_serving(SERVE_CORES, &[0, nodes / 8, nodes / 2, nodes]);
    let reference_qps = 8_500.0;
    let searches = if quick { 24 } else { 48 };
    let objective = ServeObjective::new(workload_at(reference_qps), service);
    let mut searcher = BayesOpt::new(space, 7);
    searcher.observe(
        default_config,
        ServeObjective::new(workload_at(reference_qps), service).tail_latency(default_config),
    );
    let report =
        OnlineAutoTuner::new(searcher, searches).run(searches, objective.into_objective(), None);
    let tuned_config = report.config_opt;
    println!(
        "tuned at {reference_qps} qps over {searches} trials: {tuned_config} \
         (p99 {:.3}ms)",
        report.best_epoch_time * 1e3
    );

    let qps_points: &[f64] = if quick {
        &[2_000.0, 8_500.0, 9_500.0]
    } else {
        &[1_000.0, 4_000.0, 7_000.0, 8_500.0, 9_500.0]
    };
    println!(
        "\n{:<10} {:>16} {:>16} {:>10}",
        "qps", "default p99 ms", "tuned p99 ms", "speedup"
    );
    let mut curve = Vec::new();
    let mut improvement_at_ref = 1.0;
    for &qps in qps_points {
        let obj = |cfg: Config| ServeObjective::new(workload_at(qps), service).tail_latency(cfg);
        let default_p99 = obj(default_config);
        let tuned_p99 = obj(tuned_config);
        let speedup = default_p99 / tuned_p99;
        if qps == reference_qps {
            improvement_at_ref = speedup;
        }
        println!(
            "{qps:<10} {:>16.3} {:>16.3} {:>9.2}x",
            default_p99 * 1e3,
            tuned_p99 * 1e3,
            speedup
        );
        curve.push(Json::obj(vec![
            ("qps", Json::Num(qps)),
            ("default_p99_ms", Json::Num(default_p99 * 1e3)),
            ("tuned_p99_ms", Json::Num(tuned_p99 * 1e3)),
        ]));
    }

    // ---- 2. Closed-loop load over the real serving session -------------
    // A fixed pool of distinct queries replayed for several passes: the
    // first pass is the warm-up that fills the result cache, later passes
    // measure the warm mix.
    let scale = if quick { 0.005 } else { 0.02 };
    let dataset = Arc::new(FLICKR.synthesize(scale, 23));
    let arch = Arch::Sage;
    let net = AnyModel::build(arch, dataset.feat_dim(), 16, dataset.num_classes, 2, 9);
    let sampler = Arc::new(NeighborSampler::new(vec![10, 5]));
    let distinct = 64usize;
    let passes = if quick { 4 } else { 12 };
    let num_nodes = dataset.graph.num_nodes() as u64;
    let mut rng = StreamRng::new(0xC10C);
    let queries: Vec<Vec<NodeId>> = (0..distinct)
        .map(|_| {
            let len = 1 + (rng.next_u64() % 4) as usize;
            (0..len)
                .map(|_| (rng.next_u64() % num_nodes) as NodeId)
                .collect()
        })
        .collect();

    let mut session = ServeSpec::builder(Arc::clone(&dataset), sampler, net)
        .deadline_us(0) // inline execution: each submit answers immediately
        .result_cache_entries(2 * distinct)
        .feature_cache_rows(2_048)
        .normalization(Normalization::Mean)
        .seed(3)
        .start();

    let mut latencies = Vec::new();
    let (mut warm_hits, mut warm_total) = (0u64, 0u64);
    let t0 = Instant::now();
    for pass in 0..passes {
        for q in &queries {
            let out = session.submit(q.clone(), None).expect("admission");
            for r in out.completed {
                let r = r.expect("inline response");
                if pass > 0 {
                    warm_total += 1;
                    warm_hits += u64::from(r.cache_hit);
                    latencies.push(r.latency_seconds);
                }
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let total_requests = (passes * distinct) as f64;
    let warm_hit_rate = warm_hits as f64 / warm_total.max(1) as f64;
    let (p50_ms, p99_ms) = (
        nearest_rank_ms(&mut latencies, 0.50),
        nearest_rank_ms(&mut latencies, 0.99),
    );
    let cache = session.result_cache_stats().expect("result cache enabled");
    println!(
        "\nclosed loop: {total_requests:.0} requests ({distinct} distinct x {passes} passes) \
         in {:.1}ms — {:.0} req/s",
        wall * 1e3,
        total_requests / wall
    );
    println!(
        "warm passes: hit rate {:.1}% ({warm_hits}/{warm_total}), \
         latency p50 {p50_ms:.3}ms p99 {p99_ms:.3}ms",
        warm_hit_rate * 100.0
    );
    println!(
        "result cache: {} hits / {} misses / {} evictions, {}/{} resident",
        cache.hits, cache.misses, cache.evictions, cache.resident, cache.capacity
    );

    // ---- Artifact -------------------------------------------------------
    let json = Json::obj(vec![
        ("host_threads", Json::Num(host_threads as f64)),
        ("quick", Json::Bool(quick)),
        ("task", Json::str(&model.setup().label())),
        ("serve_cores", Json::Num(SERVE_CORES as f64)),
        ("tuned_config", Json::str(&tuned_config.to_string())),
        ("reference_qps", Json::Num(reference_qps)),
        ("p99_improvement", Json::Num(improvement_at_ref)),
        ("qps_curve", Json::Arr(curve)),
        ("warm_hit_rate", Json::Num(warm_hit_rate)),
        (
            "closed_loop",
            Json::obj(vec![
                ("requests", Json::Num(total_requests)),
                ("distinct", Json::Num(distinct as f64)),
                ("passes", Json::Num(passes as f64)),
                ("p50_ms", Json::Num(p50_ms)),
                ("p99_ms", Json::Num(p99_ms)),
                ("throughput_rps", Json::Num(total_requests / wall)),
            ]),
        ),
    ]);
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out_path = if quick {
        root.join("target/BENCH_serving.quick.json")
    } else {
        root.join("BENCH_serving.json")
    };
    match std::fs::write(&out_path, json.encode() + "\n") {
        Ok(()) => println!("\nbaseline written to {}", out_path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", out_path.display()),
    }

    // ---- Quick-mode perf gates (structural, host-independent) ----------
    if quick {
        if improvement_at_ref < 1.0 {
            eprintln!(
                "PERF GATE: tuned config loses to the library default at the reference rate \
                 ({improvement_at_ref:.2}x < 1.00x)"
            );
            std::process::exit(1);
        }
        println!(
            "perf gate OK: tuned p99 at {improvement_at_ref:.2}x the default at \
             {reference_qps} qps"
        );
        if warm_hit_rate <= 0.9 {
            eprintln!("PERF GATE: warm result-cache hit rate {warm_hit_rate:.3} is not above 0.9");
            std::process::exit(1);
        }
        println!("perf gate OK: warm result-cache hit rate {warm_hit_rate:.3} (> 0.9)");
    }
}
