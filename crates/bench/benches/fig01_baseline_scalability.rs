//! **Figure 1** — state-of-the-art GNN libraries suffer from poor
//! scalability: normalized training performance of PyG and DGL (default
//! setup, single process) vs. allocated cores on the 4-socket Ice Lake,
//! 3-layer GraphSAGE on ogbn-products. The paper's curves flatten past
//! 16 cores; so do these.

use argo_bench::bar;
use argo_graph::datasets::OGBN_PRODUCTS;
use argo_platform::{Library, ModelKind, PerfModel, SamplerKind, Setup, ICE_LAKE_8380H};

fn main() {
    println!("=== Figure 1: baseline scalability (Neighbor-SAGE, ogbn-products, Ice Lake) ===");
    println!("normalized speedup over 4 cores; paper: no speedup past 16 cores\n");
    let cores_axis = [4usize, 8, 16, 32, 64, 112];
    for library in [Library::Pyg, Library::Dgl] {
        let model = PerfModel::new(Setup {
            platform: ICE_LAKE_8380H,
            library,
            sampler: SamplerKind::Neighbor,
            model: ModelKind::Sage,
            dataset: OGBN_PRODUCTS,
        });
        let t4 = model.baseline_epoch_time(4);
        println!("{}:", library.name());
        let mut prev = 0.0;
        let mut peak_cores = 4;
        let mut peak = 0.0;
        for &c in &cores_axis {
            let speedup = t4 / model.baseline_epoch_time(c);
            if speedup > peak {
                peak = speedup;
                peak_cores = c;
            }
            println!(
                "  {:>3} cores: {:>5.2}x  {}",
                c,
                speedup,
                bar(speedup / 8.0, 32)
            );
            prev = speedup;
        }
        let _ = prev;
        println!(
            "  -> peak at {peak_cores} cores; gain from 16 to 112 cores: {:.2}x (paper: ~1x)\n",
            (t4 / model.baseline_epoch_time(112)) / (t4 / model.baseline_epoch_time(16))
        );
    }
}
