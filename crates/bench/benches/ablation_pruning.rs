//! **Section VII-B ablation** — search-space pruning vs Bayesian
//! optimization: a greedy coordinate-pruning searcher (halve the range of
//! one dimension at a time around the best observed cell) is competitive on
//! a low-dimensional space but relies on structure BayesOpt does not need;
//! the paper argues BayesOpt generalizes to higher-dimensional spaces.

use argo_bench::mean_std;
use argo_graph::datasets::REDDIT;
use argo_platform::{Library, ModelKind, PerfModel, SamplerKind, Setup, ICE_LAKE_8380H};
use argo_tune::{BayesOpt, GreedyPruning, SearchSpace, Searcher};

fn main() {
    println!("=== Section VII-B: search-space pruning vs Bayesian optimization ===\n");
    let m = PerfModel::new(Setup {
        platform: ICE_LAKE_8380H,
        library: Library::Dgl,
        sampler: SamplerKind::Neighbor,
        model: ModelKind::Sage,
        dataset: REDDIT,
    });
    let optimal = m.argo_best_epoch_time(112).1;
    let budget = 35;
    let mut pruning = GreedyPruning::new(SearchSpace::for_cores(112));
    for _ in 0..budget {
        let c = pruning.suggest();
        pruning.observe(c, m.epoch_time(c));
    }
    let (pc, pt) = pruning.best().expect("observed");
    println!("exhaustive optimum: {optimal:.2}s");
    println!(
        "greedy pruning ({budget} evals):   {:.2}s ({:.2}x of optimal) at {}",
        pt,
        optimal / pt,
        pc
    );
    let bo: Vec<f64> = (0..5)
        .map(|seed| {
            let mut bo = BayesOpt::new(SearchSpace::for_cores(112), seed);
            for _ in 0..budget {
                let c = bo.suggest();
                bo.observe(c, m.epoch_time(c));
            }
            bo.best().unwrap().1
        })
        .collect();
    let (bo_mean, bo_std) = mean_std(&bo);
    println!(
        "BayesOpt     ({budget} evals):   {:.2}s±{:.2} ({:.2}x of optimal)",
        bo_mean,
        bo_std,
        optimal / bo_mean
    );
    println!("\nOn this 3-D space both reach the optimum's neighborhood; pruning assumes a");
    println!("monotone basin per axis and its probe count grows exponentially with extra");
    println!("dimensions, while BayesOpt needs no such structure (paper Section VII-B).");
    assert!(optimal / bo_mean > 0.85);
}
