//! **Table V** — epoch time (sec) of the configuration found by each search
//! algorithm, PyG backend.

fn main() {
    argo_bench::search_quality_table(argo_platform::Library::Pyg);
}
