//! Criterion micro-benchmarks of the core kernels: SpMM, GEMM, neighbor and
//! ShaDow sampling, GP fitting, gradient all-reduce. These are the building
//! blocks whose relative costs the platform model's coefficients abstract.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use argo_graph::generators::power_law;
use argo_rt::AllReduce;
use argo_sample::{NeighborSampler, Sampler, ShadowSampler};
use argo_tensor::{Matrix, SparseMatrix};
use argo_tune::gp::GaussianProcess;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn random_csr(rows: usize, cols: usize, nnz_per_row: usize) -> SparseMatrix {
    let mut indptr = vec![0usize];
    let mut indices = Vec::new();
    for i in 0..rows {
        for k in 0..nnz_per_row {
            indices.push(((i * 31 + k * 97) % cols) as u32);
        }
        indptr.push(indices.len());
    }
    SparseMatrix::new(rows, cols, indptr, indices, None)
}

fn bench_spmm(c: &mut Criterion) {
    let a = random_csr(2048, 2048, 16);
    let d = Matrix::xavier(2048, 64, 1);
    c.bench_function("spmm_2048x2048_nnz16_f64", |b| b.iter(|| a.spmm(&d)));
}

fn bench_gemm(c: &mut Criterion) {
    let a = Matrix::xavier(256, 256, 2);
    let b_ = Matrix::xavier(256, 256, 3);
    c.bench_function("gemm_256", |b| b.iter(|| a.matmul(&b_)));
}

fn bench_sampling(c: &mut Criterion) {
    let g = Arc::new(power_law(20_000, 200_000, 0.8, 5));
    let seeds: Vec<u32> = (0..256).collect();
    let neighbor = NeighborSampler::paper_default();
    let shadow = ShadowSampler::paper_default();
    c.bench_function("neighbor_sample_b256", |b| {
        b.iter_batched(
            || SmallRng::seed_from_u64(9),
            |mut rng| neighbor.sample(&g, &seeds, &mut rng),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("shadow_sample_b256", |b| {
        b.iter_batched(
            || SmallRng::seed_from_u64(9),
            |mut rng| shadow.sample(&g, &seeds, &mut rng),
            BatchSize::SmallInput,
        )
    });
}

fn bench_gp(c: &mut Criterion) {
    let n = 40;
    let x: Vec<[f64; 3]> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            [t, (t * 7.0) % 1.0, (t * 13.0) % 1.0]
        })
        .collect();
    let y: Vec<f64> = x.iter().map(|v| (v[0] * 6.0).sin() + v[1]).collect();
    c.bench_function("gp_fit_40obs", |b| b.iter(|| GaussianProcess::fit(&x, &y)));
    let gp = GaussianProcess::fit(&x, &y);
    c.bench_function("gp_predict", |b| b.iter(|| gp.predict(&[0.3, 0.5, 0.7])));
}

fn bench_attention_kernels(c: &mut Criterion) {
    // Edge softmax + SDDMM on a GAT-sized block.
    let a = random_csr(4096, 4096, 12);
    let sl: Vec<f32> = (0..4096).map(|i| (i % 7) as f32 * 0.1).collect();
    let sr: Vec<f32> = (0..4096).map(|i| (i % 5) as f32 * 0.2).collect();
    c.bench_function("sddmm_add_4096_nnz12", |b| b.iter(|| a.sddmm_add(&sl, &sr)));
    let logits = a.sddmm_add(&sl, &sr);
    c.bench_function("edge_softmax_4096_nnz12", |b| {
        b.iter(|| logits.row_softmax())
    });
    let z = Matrix::xavier(4096, 32, 4);
    let dh = Matrix::xavier(4096, 32, 5);
    c.bench_function("sddmm_dot_4096_f32", |b| b.iter(|| a.sddmm(&dh, &z)));
}

fn bench_gather(c: &mut Criterion) {
    use argo_graph::features::Features;
    let feats = Features::new(vec![0.5f32; 100_000 * 64], 64);
    let ids: Vec<u32> = (0..8192u32).map(|i| (i * 37) % 100_000).collect();
    c.bench_function("feature_gather_8192x64", |b| b.iter(|| feats.gather(&ids)));
}

fn bench_allreduce(c: &mut Criterion) {
    c.bench_function("allreduce_4x100k", |b| {
        b.iter(|| {
            let ar = Arc::new(AllReduce::new(4, 100_000));
            std::thread::scope(|s| {
                for r in 0..4 {
                    let ar = Arc::clone(&ar);
                    s.spawn(move || {
                        let mut buf = vec![r as f32; 100_000];
                        ar.reduce_mean(&mut buf);
                    });
                }
            });
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_spmm, bench_gemm, bench_sampling, bench_gp, bench_attention_kernels, bench_gather, bench_allreduce
);
criterion_main!(benches);
