//! Micro-benchmarks of the training kernels: serial naive vs blocked vs
//! SIMD vs SIMD+pool for every matmul/SpMM flavor, plus the end-to-end
//! `train_step_gathered` backward on a 4096-row batch.
//!
//! Emits machine-readable `BENCH_kernels.json` at the repository root
//! (GFLOP/s and speedup-vs-serial per kernel and shape) so future PRs can
//! diff kernel performance against this baseline. The `simd` column runs
//! the dispatch default tier serially (AVX2+FMA microkernel on hosts that
//! have it, scalar otherwise); `pool` is the full dispatch stack.
//!
//! `ARGO_BENCH_QUICK=1` switches to a fast CI mode: fewer samples, smaller
//! train-step batch, and a sanity perf gate — the process exits non-zero
//! if any blocked kernel is slower than its naive serial counterpart at
//! the large shape (generous 1.0× threshold), or if a SIMD kernel loses to
//! the tier below it (1.0× floor for the GEMM family, 0.95× for the
//! memory-bound SpMM gathers, which are parity-by-design on feature dims
//! too narrow for full vectors; pool speedups are *recorded* but never
//! gated, since CI may have a single core).

use std::time::Instant;

use argo_graph::features::Features;
use argo_graph::generators::power_law;
use argo_nn::{Gnn, GnnKind};
use argo_rt::json::Json;
use argo_rt::ThreadPool;
use argo_sample::{NeighborSampler, Sampler};
use argo_tensor::{DispatchPolicy, Epilogue, Matrix, SparseMatrix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Minimum wall-clock seconds across `samples` runs (after one warmup).
fn time_min<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut sink = f(); // warmup; also keeps the result observable
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t = Instant::now();
        sink = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    std::hint::black_box(sink);
    best
}

fn random_csr(rows: usize, cols: usize, nnz_per_row: usize) -> SparseMatrix {
    let mut indptr = vec![0usize];
    let mut indices = Vec::new();
    let mut vals = Vec::new();
    for i in 0..rows {
        for k in 0..nnz_per_row {
            indices.push(((i * 31 + k * 97) % cols) as u32);
            vals.push(((i + k) % 7) as f32 * 0.2 + 0.1);
        }
        indptr.push(indices.len());
    }
    SparseMatrix::new(rows, cols, indptr, indices, Some(vals))
}

struct KernelRow {
    name: &'static str,
    shape: String,
    flops: f64,
    serial_s: f64,
    blocked_s: Option<f64>,
    simd_s: Option<f64>,
    pool_s: f64,
    /// Quick-mode perf-gate floor for blocked-vs-serial speedup, when
    /// gated: 1.0 for the blocked GEMMs (generous — they sit at 1.2x+),
    /// 0.95 for the CSC transpose, which is parity-by-design on one core
    /// (its win is parallelizability) and only needs to not regress.
    gate_min: Option<f64>,
    /// Quick-mode floor for SIMD vs the tier directly below it (blocked
    /// when present, else serial): 1.0 for the FMA GEMM family, 0.95 for
    /// the memory-bound SpMM gathers.
    simd_gate_min: Option<f64>,
}

impl KernelRow {
    /// The tier the SIMD column is gated against: blocked when the kernel
    /// has one, naive serial otherwise (the SpMM rows).
    fn simd_baseline_s(&self) -> f64 {
        self.blocked_s.unwrap_or(self.serial_s)
    }

    fn to_json(&self) -> Json {
        let gflops = |s: f64| self.flops / s / 1e9;
        let mut fields = vec![
            ("name", Json::str(self.name)),
            ("shape", Json::str(&self.shape)),
            ("flops", Json::Num(self.flops)),
            ("serial_ms", Json::Num(self.serial_s * 1e3)),
            ("serial_gflops", Json::Num(gflops(self.serial_s))),
            ("pool_ms", Json::Num(self.pool_s * 1e3)),
            ("pool_gflops", Json::Num(gflops(self.pool_s))),
            ("speedup_pool", Json::Num(self.serial_s / self.pool_s)),
        ];
        if let Some(b) = self.blocked_s {
            fields.push(("blocked_ms", Json::Num(b * 1e3)));
            fields.push(("blocked_gflops", Json::Num(gflops(b))));
            fields.push(("speedup_blocked", Json::Num(self.serial_s / b)));
        }
        if let Some(s) = self.simd_s {
            fields.push(("simd_ms", Json::Num(s * 1e3)));
            fields.push(("simd_gflops", Json::Num(gflops(s))));
            fields.push(("speedup_simd", Json::Num(self.serial_s / s)));
        }
        Json::obj(fields.iter().map(|(k, v)| (*k, v.clone())).collect())
    }
}

/// Builds a 2-layer neighbor-sampled batch with `n_seeds` destination rows
/// and synthetic 64-dim features, for the end-to-end train-step benchmark.
fn train_fixture(
    n_seeds: usize,
) -> (
    argo_sample::batch::SampledBatch,
    Matrix,
    Vec<u32>,
    usize, // feature dim
) {
    let nodes = (n_seeds * 4).max(8_192);
    let graph = power_law(nodes, nodes * 10, 0.8, 5);
    let seeds: Vec<u32> = (0..n_seeds as u32).collect();
    let sampler = NeighborSampler::new(vec![10, 5]);
    let batch = sampler.sample(&graph, &seeds, &mut SmallRng::seed_from_u64(3));
    let dim = 64usize;
    let mut rng = SmallRng::seed_from_u64(4);
    let feats = Features::new(
        (0..nodes * dim).map(|_| rng.gen::<f32>() - 0.5).collect(),
        dim,
    );
    let input_ids = batch.input_nodes().to_vec();
    let gathered = feats.gather(&input_ids);
    let input = Matrix::from_vec(input_ids.len(), dim, gathered.data().to_vec());
    let labels: Vec<u32> = (0..nodes).map(|_| rng.gen_range(0..8)).collect();
    (batch, input, labels, dim)
}

fn main() {
    let quick = std::env::var("ARGO_BENCH_QUICK").is_ok_and(|v| v == "1");
    let samples = if quick { 2 } else { 5 };
    // The SpMM gathers run ~1 ms and are memory-bound, so a single noisy
    // scheduler quantum can double one sample; min-of-2 is not enough to
    // reject that on a shared CI core. More samples cost almost nothing.
    let sparse_samples = if quick { 8 } else { samples };
    let pool = ThreadPool::new("bench", 4);
    // Threshold 1 so the pool variants parallelize at every benched shape;
    // `policy` is the full dispatch default (SIMD tier on), `scalar` pins
    // the pre-SIMD tiers for the serial/blocked columns. The sparse work
    // threshold is forced to 1 so the SpMM pool columns keep measuring the
    // pool even below the dispatch crossover.
    let policy = DispatchPolicy::new(1).with_sparse_work_threshold(1);
    let scalar = policy.force_scalar();
    let mut rows: Vec<KernelRow> = Vec::new();

    // -- GEMM: small and large shapes; large is the gated one. --
    for (m, k, n, gate_min) in [(256, 64, 32, None), (1024, 256, 128, Some(1.0))] {
        let a = Matrix::xavier(m, k, 1);
        let b = Matrix::xavier(k, n, 2);
        let serial = time_min(samples, || a.matmul(&b));
        let blocked = time_min(samples, || a.matmul_blocked(&b));
        let simd = time_min(samples, || policy.gemm(&a, &b, None));
        let pooled = time_min(samples, || policy.gemm(&a, &b, Some(&pool)));
        rows.push(KernelRow {
            name: "gemm",
            shape: format!("{m}x{k}x{n}"),
            flops: 2.0 * (m * k * n) as f64,
            serial_s: serial,
            blocked_s: Some(blocked),
            simd_s: Some(simd),
            pool_s: pooled,
            gate_min,
            simd_gate_min: gate_min,
        });
    }

    // -- Weight gradient dW = Xᵀ dY (reduction over 4096 rows). --
    {
        let (m, k, n) = (4096, 64, 32);
        let x = Matrix::xavier(m, k, 3);
        let g = Matrix::xavier(m, n, 4);
        let serial = time_min(samples, || x.matmul_transpose_self(&g));
        let blocked = time_min(samples, || x.matmul_transpose_self_blocked(&g));
        let simd = time_min(samples, || policy.grad_weights(&x, &g, None));
        let pooled = time_min(samples, || policy.grad_weights(&x, &g, Some(&pool)));
        rows.push(KernelRow {
            name: "grad_weights",
            shape: format!("{m}x{k}x{n}"),
            flops: 2.0 * (m * k * n) as f64,
            serial_s: serial,
            blocked_s: Some(blocked),
            simd_s: Some(simd),
            pool_s: pooled,
            gate_min: Some(1.0),
            simd_gate_min: Some(1.0),
        });
    }

    // -- Input gradient dX = dY Wᵀ. --
    {
        let (m, k, n) = (4096, 64, 32);
        let g = Matrix::xavier(m, n, 5);
        let w = Matrix::xavier(k, n, 6);
        let serial = time_min(samples, || g.matmul_transpose_other(&w));
        let blocked = time_min(samples, || g.matmul_transpose_other_blocked(&w));
        let simd = time_min(samples, || policy.grad_input(&g, &w, 0..k, None));
        let pooled = time_min(samples, || policy.grad_input(&g, &w, 0..k, Some(&pool)));
        rows.push(KernelRow {
            name: "grad_input",
            shape: format!("{m}x{n}x{k}"),
            flops: 2.0 * (m * k * n) as f64,
            serial_s: serial,
            blocked_s: Some(blocked),
            simd_s: Some(simd),
            pool_s: pooled,
            gate_min: Some(1.0),
            simd_gate_min: Some(1.0),
        });
    }

    // -- SpMM (forward aggregation): serial vs pool; no blocked variant. --
    let adj = random_csr(4096, 4096, 16);
    {
        let h = Matrix::xavier(4096, 64, 7);
        // Serial baseline is the scalar row gather — the public `spmm`
        // auto-enables SIMD on capable hosts, which is what the simd
        // column measures.
        let serial = time_min(sparse_samples, || scalar.aggregate(&adj, &h, None));
        let simd = time_min(sparse_samples, || policy.aggregate(&adj, &h, None));
        let pooled = time_min(sparse_samples, || policy.aggregate(&adj, &h, Some(&pool)));
        rows.push(KernelRow {
            name: "spmm",
            shape: "4096x4096_nnz16_d64".to_string(),
            flops: 2.0 * (adj.nnz() * 64) as f64,
            serial_s: serial,
            blocked_s: None,
            simd_s: Some(simd),
            pool_s: pooled,
            gate_min: None,
            simd_gate_min: Some(0.95),
        });
    }

    // -- Transposed SpMM: naive scatter vs CSC gather vs CSC+pool. --
    {
        let g = Matrix::xavier(4096, 64, 8);
        let serial = time_min(sparse_samples, || adj.spmm_transpose(&g));
        adj.csc(); // build the mirror once, outside the timed region
        let csc = time_min(sparse_samples, || {
            scalar.aggregate_transpose(&adj, &g, None)
        });
        let simd = time_min(sparse_samples, || {
            policy.aggregate_transpose(&adj, &g, None)
        });
        let pooled = time_min(sparse_samples, || {
            policy.aggregate_transpose(&adj, &g, Some(&pool))
        });
        rows.push(KernelRow {
            name: "spmm_transpose",
            shape: "4096x4096_nnz16_d64".to_string(),
            flops: 2.0 * (adj.nnz() * 64) as f64,
            serial_s: serial,
            blocked_s: Some(csc),
            simd_s: Some(simd),
            pool_s: pooled,
            gate_min: Some(0.95),
            simd_gate_min: Some(0.95),
        });
    }

    // -- Fused GraphSAGE GEMM vs materialized concat reference. --
    {
        let (n_dst, f, o) = (4096, 64, 32);
        let h = Matrix::xavier(n_dst + 1024, f, 9);
        let agg = Matrix::xavier(n_dst, f, 10);
        let w = Matrix::xavier(2 * f, o, 11);
        let bias = vec![0.01f32; o];
        let ids: Vec<u32> = (0..n_dst as u32).collect();
        let serial = time_min(samples, || {
            // Reference path: gather dst rows, concat, GEMM, then bias+ReLU.
            let mut z = h.gather_rows(&ids).concat_cols(&agg).matmul(&w);
            argo_tensor::ops::add_bias(&mut z, &bias);
            argo_tensor::ops::relu_inplace(&mut z)
        });
        let blocked = time_min(samples, || {
            let mut out = Matrix::zeros(n_dst, o);
            scalar.sage_gemm_into(&h, &agg, &w, Epilogue::bias_relu(&bias), None, &mut out)
        });
        let simd = time_min(samples, || {
            let mut out = Matrix::zeros(n_dst, o);
            policy.sage_gemm_into(&h, &agg, &w, Epilogue::bias_relu(&bias), None, &mut out)
        });
        let pooled = time_min(samples, || {
            let mut out = Matrix::zeros(n_dst, o);
            policy.sage_gemm_into(
                &h,
                &agg,
                &w,
                Epilogue::bias_relu(&bias),
                Some(&pool),
                &mut out,
            )
        });
        rows.push(KernelRow {
            name: "sage_fused_gemm",
            shape: format!("{n_dst}x{}x{o}", 2 * f),
            flops: 2.0 * (n_dst * 2 * f * o) as f64,
            serial_s: serial,
            blocked_s: Some(blocked),
            simd_s: Some(simd),
            pool_s: pooled,
            gate_min: Some(1.0),
            simd_gate_min: Some(1.0),
        });
    }

    // -- End-to-end: train_step_gathered, serial vs 4-thread pool. --
    let step_rows = if quick { 1024 } else { 4096 };
    let (batch, input, labels, dim) = train_fixture(step_rows);
    let step_samples = if quick { 2 } else { 3 };
    let mut model = Gnn::new(GnnKind::Sage, dim, 32, 8, 2, 1).with_dispatch(policy);
    let serial_step = time_min(step_samples, || {
        model.train_step_gathered(&batch, input.clone(), &labels, None)
    });
    let pool_step = time_min(step_samples, || {
        model.train_step_gathered(&batch, input.clone(), &labels, Some(&pool))
    });
    let step_speedup = serial_step / pool_step;

    // -- Report. --
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("=== micro_kernels (quick={quick}, host_threads={host_threads}) ===\n");
    println!(
        "{:<16} {:<22} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "kernel", "shape", "serial ms", "blocked", "simd", "pool", "blk x", "simd x", "pool x"
    );
    for r in &rows {
        println!(
            "{:<16} {:<22} {:>10.3} {:>10} {:>10} {:>10.3} {:>8} {:>8} {:>8.2}",
            r.name,
            r.shape,
            r.serial_s * 1e3,
            r.blocked_s
                .map_or("-".to_string(), |b| format!("{:.3}", b * 1e3)),
            r.simd_s
                .map_or("-".to_string(), |s| format!("{:.3}", s * 1e3)),
            r.pool_s * 1e3,
            r.blocked_s
                .map_or("-".to_string(), |b| format!("{:.2}", r.serial_s / b)),
            r.simd_s
                .map_or("-".to_string(), |s| format!("{:.2}", r.serial_s / s)),
            r.serial_s / r.pool_s,
        );
    }
    println!(
        "\ntrain_step_gathered ({step_rows} seeds, 2-layer SAGE): \
         serial {:.1} ms, 4-thread pool {:.1} ms ({step_speedup:.2}x)",
        serial_step * 1e3,
        pool_step * 1e3
    );

    let json = Json::obj(vec![
        ("host_threads", Json::Num(host_threads as f64)),
        ("quick", Json::Bool(quick)),
        ("pool_workers", Json::Num(4.0)),
        (
            "kernels",
            Json::Arr(rows.iter().map(KernelRow::to_json).collect()),
        ),
        (
            "train_step_gathered",
            Json::obj(vec![
                ("seed_rows", Json::Num(step_rows as f64)),
                ("serial_ms", Json::Num(serial_step * 1e3)),
                ("pool_ms", Json::Num(pool_step * 1e3)),
                ("speedup_pool", Json::Num(step_speedup)),
            ]),
        ),
    ]);
    // Quick (CI) runs land in target/ so they never dirty the committed
    // full-mode baseline at the repository root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out_path = if quick {
        root.join("target/BENCH_kernels.quick.json")
    } else {
        root.join("BENCH_kernels.json")
    };
    match std::fs::write(&out_path, json.encode() + "\n") {
        Ok(()) => println!("\nbaseline written to {}", out_path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", out_path.display()),
    }

    // -- Quick-mode perf gate: blocked must not lose to naive serial, and
    // SIMD must not lose to the tier directly below it. The SIMD gate only
    // bites on hosts where the AVX2 tier is actually live; on scalar
    // fallback hosts both sides run the same kernels and sit at ~1.0x.
    if quick {
        let mut failed = false;
        for r in &rows {
            if let (Some(floor), Some(b)) = (r.gate_min, r.blocked_s) {
                let speedup = r.serial_s / b;
                if speedup < floor {
                    eprintln!(
                        "PERF GATE: {} @ {} blocked is slower than serial \
                         ({speedup:.2}x < required {floor:.2}x)",
                        r.name, r.shape
                    );
                    failed = true;
                }
            }
            if let (Some(floor), Some(s)) = (r.simd_gate_min, r.simd_s) {
                let vs_below = r.simd_baseline_s() / s;
                if vs_below < floor {
                    eprintln!(
                        "PERF GATE: {} @ {} simd is slower than the tier below \
                         ({vs_below:.2}x < required {floor:.2}x)",
                        r.name, r.shape
                    );
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "perf gate OK: no blocked kernel regresses against serial, \
             no simd kernel regresses against the tier below"
        );
    }
}
