//! **Table IV** — epoch time (sec) of the configuration found by each search
//! algorithm, DGL backend: Exhaustive / Default / Simulated Annealing /
//! Auto-Tuner, 2 platforms x 2 sampler-models x 4 datasets.

fn main() {
    argo_bench::search_quality_table(argo_platform::Library::Dgl);
}
