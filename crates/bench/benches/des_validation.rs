//! **Model cross-validation** — the discrete-event pipeline simulator vs
//! the analytic epoch-time model.
//!
//! Two independent implementations of the same schedule (closed formulas vs
//! event-by-event execution with queueing and memory processor-sharing)
//! should agree on the *shape* of the design space: correlated epoch times,
//! matching optima, and the same qualitative effects (memory overlap grows
//! with processes; the default setup underperforms in both).

use argo_bench::mean_std;
use argo_graph::datasets::{OGBN_PRODUCTS, REDDIT};
use argo_platform::{
    Library, ModelKind, PerfModel, PipelineSim, SamplerKind, Setup, ICE_LAKE_8380H,
};
use argo_rt::{enumerate_space, Config};

fn main() {
    println!("=== Cross-validation: discrete-event simulator vs analytic model ===\n");
    for (sampler, mk, ds) in [
        (SamplerKind::Neighbor, ModelKind::Sage, OGBN_PRODUCTS),
        (SamplerKind::Shadow, ModelKind::Gcn, REDDIT),
    ] {
        let m = PerfModel::new(Setup {
            platform: ICE_LAKE_8380H,
            library: Library::Dgl,
            sampler,
            model: mk,
            dataset: ds,
        });
        let sim = PipelineSim::new(&m);
        let configs: Vec<Config> = enumerate_space(112).into_iter().step_by(23).collect();
        let analytic: Vec<f64> = configs.iter().map(|&c| m.epoch_time(c)).collect();
        let des: Vec<f64> = configs
            .iter()
            .map(|&c| sim.simulate(c).epoch_time)
            .collect();
        // Pearson correlation of log times.
        let la: Vec<f64> = analytic.iter().map(|t| t.ln()).collect();
        let ld: Vec<f64> = des.iter().map(|t| t.ln()).collect();
        let (ma, _) = mean_std(&la);
        let (md, _) = mean_std(&ld);
        let cov: f64 = la.iter().zip(&ld).map(|(a, d)| (a - ma) * (d - md)).sum();
        let va: f64 = la.iter().map(|a| (a - ma).powi(2)).sum();
        let vd: f64 = ld.iter().map(|d| (d - md).powi(2)).sum();
        let r = cov / (va.sqrt() * vd.sqrt()).max(1e-12);
        let ratios: Vec<f64> = des.iter().zip(&analytic).map(|(d, a)| d / a).collect();
        let (rm, rs) = mean_std(&ratios);
        println!("{}:", m.setup().label());
        println!(
            "  {} configurations sampled from the 694-point space",
            configs.len()
        );
        println!("  log-time correlation: r = {r:.3}");
        println!("  DES/analytic epoch-time ratio: {rm:.2} ± {rs:.2}");
        let best_a = configs[la
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0];
        let best_d = configs[ld
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0];
        println!("  analytic optimum: {best_a}; DES optimum: {best_d}");
        let des_at_a = sim.simulate(best_a).epoch_time;
        let des_min = des.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "  analytic optimum evaluated by DES: {:.2}s vs DES optimum {:.2}s ({:.2}x)\n",
            des_at_a,
            des_min,
            des_min / des_at_a
        );
        assert!(r > 0.75, "models disagree: r = {r}");
        assert!(des_at_a <= des_min * 1.35);
    }
    // Emergent overlap: the simulator's memory concurrency with processes.
    let m = PerfModel::new(Setup {
        platform: ICE_LAKE_8380H,
        library: Library::Dgl,
        sampler: SamplerKind::Neighbor,
        model: ModelKind::Sage,
        dataset: OGBN_PRODUCTS,
    });
    let sim = PipelineSim::new(&m);
    println!("emergent gather overlap (mean concurrent memory jobs while busy):");
    for p in [2usize, 4, 8] {
        let out = sim.simulate(Config::new(p, 1, 6));
        println!(
            "  {p} processes: {:.2} concurrent gathers, memory busy {:.0}% of the epoch",
            out.mean_memory_concurrency,
            out.memory_busy_fraction * 100.0
        );
    }
    println!("\nThe executable schedule reproduces the analytic model's landscape — the");
    println!("Figure 2 overlap emerges from event dynamics rather than a formula.");
}
