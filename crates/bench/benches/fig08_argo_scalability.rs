//! **Figure 8** — with ARGO enabled, both libraries scale past 16 cores:
//! normalized performance (vs 4 cores) of PyG/DGL with and without ARGO,
//! ogbn-products, on both platforms.

use argo_bench::{bar, platform_tag, PLATFORMS};
use argo_graph::datasets::OGBN_PRODUCTS;
use argo_platform::{Library, ModelKind, PerfModel, SamplerKind, Setup};

fn main() {
    println!(
        "=== Figure 8: scalability with and without ARGO (Neighbor-SAGE, ogbn-products) ===\n"
    );
    for platform in PLATFORMS {
        println!("-- {} --", platform_tag(&platform));
        let axis: Vec<usize> = if platform.total_cores >= 100 {
            vec![4, 8, 16, 32, 64, 112]
        } else {
            vec![4, 8, 16, 32, 64]
        };
        for library in [Library::Pyg, Library::Dgl] {
            let m = PerfModel::new(Setup {
                platform,
                library,
                sampler: SamplerKind::Neighbor,
                model: ModelKind::Sage,
                dataset: OGBN_PRODUCTS,
            });
            let base = m.baseline_epoch_time(4);
            let argo_base = m.argo_best_epoch_time(4).1;
            println!("  {}:", library.name());
            let mut base16 = 1.0;
            let mut argo16 = 1.0;
            for &c in &axis {
                let s_base = base / m.baseline_epoch_time(c);
                let (cfg, t) = m.argo_best_epoch_time(c);
                let s_argo = argo_base / t;
                if c == 16 {
                    base16 = s_base;
                    argo16 = s_argo;
                }
                // Each line is normalized to its own 4-core point, as in the
                // paper ("the normalized speedup of each line cannot be
                // directly compared with other lines"); absolute epoch times
                // are shown for the cross-line comparison.
                println!(
                    "    {:>3} cores | plain {:>5.2}x ({:>6.2}s) {} | +ARGO {:>5.2}x ({:>6.2}s) {} (cfg {})",
                    c,
                    s_base,
                    m.baseline_epoch_time(c),
                    bar(s_base / 10.0, 16),
                    s_argo,
                    t,
                    bar(s_argo / 10.0, 16),
                    cfg
                );
            }
            let max_cores = *axis.last().unwrap();
            let late_base = (base / m.baseline_epoch_time(max_cores)) / base16;
            let late_argo = (argo_base / m.argo_best_epoch_time(max_cores).1) / argo16;
            println!(
                "    -> gain from 16 to {max_cores} cores: plain {late_base:.2}x, +ARGO {late_argo:.2}x\n"
            );
            assert!(
                late_argo > late_base,
                "ARGO must scale better past 16 cores than the baseline"
            );
        }
    }
    println!("Plain curves flatten at ~16 cores; ARGO keeps scaling (flattening past 64 cores");
    println!("on the 4-socket machine due to the UPI bandwidth ceiling, as in the paper).");
}
