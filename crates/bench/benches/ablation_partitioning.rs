//! **Section VII-A ablation** — data-splitting strategy: random (ARGO's
//! default) vs a METIS-like locality partitioner (BFS blocks). Measures, on
//! a real synthetic graph: edge cut, per-epoch sampled workload (locality
//! partitions share more neighbors within a process), and the partitioning
//! cost itself — the reason the paper keeps random splitting (the tuner
//! changes the process count, forcing re-partitioning).

use std::time::Instant;

use argo_graph::datasets::OGBN_PRODUCTS;
use argo_graph::partition::{bfs_partition, edge_cut, random_partition};
use argo_sample::{NeighborSampler, Sampler};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    println!("=== Section VII-A: random vs METIS-like (BFS-locality) partitioning ===\n");
    let d = OGBN_PRODUCTS.synthesize(0.004, 23);
    let sampler = NeighborSampler::paper_default();
    println!(
        "graph: {} nodes, {} edges; {} training targets",
        d.graph.num_nodes(),
        d.graph.num_edges(),
        d.train_nodes.len()
    );
    println!(
        "\n{:>6} {:>12} {:>12} {:>14} {:>14} {:>12} {:>12}",
        "procs", "cut(rand)", "cut(bfs)", "edges(rand)", "edges(bfs)", "t_rand(ms)", "t_bfs(ms)"
    );
    for n_proc in [2usize, 4, 8] {
        let t0 = Instant::now();
        let rand_parts = random_partition(&d.train_nodes, n_proc, 7);
        let t_rand = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let bfs_parts = bfs_partition(&d.graph, &d.train_nodes, n_proc);
        let t_bfs = t0.elapsed().as_secs_f64() * 1e3;
        let cut_r = edge_cut(&d.graph, &rand_parts);
        let cut_b = edge_cut(&d.graph, &bfs_parts);
        // Sampled workload: batches within a locality partition share more
        // neighbors, so fewer total edges/input nodes.
        let workload = |parts: &[Vec<u32>]| -> usize {
            let mut edges = 0usize;
            for (rank, part) in parts.iter().enumerate() {
                let mut rng = SmallRng::seed_from_u64(rank as u64);
                for chunk in part.chunks(128) {
                    let b = sampler.sample(&d.graph, chunk, &mut rng);
                    edges += b.total_edges(3);
                }
            }
            edges
        };
        let e_r = workload(&rand_parts);
        let e_b = workload(&bfs_parts);
        println!(
            "{:>6} {:>12} {:>12} {:>14} {:>14} {:>12.2} {:>12.2}",
            n_proc, cut_r, cut_b, e_r, e_b, t_rand, t_bfs
        );
        assert!(cut_b < cut_r, "BFS partitioning must reduce the edge cut");
        assert!(
            t_bfs > t_rand,
            "locality partitioning must cost more than a random shuffle"
        );
    }
    println!("\nBFS/METIS-like partitioning lowers the edge cut (more balanced, more neighbor");
    println!("sharing) but costs far more than a random shuffle — and must be re-run whenever");
    println!("the auto-tuner changes the process count, which is why ARGO defaults to random.");
}
