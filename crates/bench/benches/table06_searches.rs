//! **Table VI** — number of searches of each algorithm, plus the Section
//! VI-D auto-tuner overhead measurements (tuner CPU time and memory).

use argo_bench::{platform_tag, PLATFORMS};
use argo_tune::{paper_num_searches, BayesOpt, SearchSpace, Searcher};

fn main() {
    println!("=== Table VI: number of searches of different algorithms ===\n");
    println!(
        "{:<24} {:<15} {:>16} {:>14} {:>12}",
        "platform", "sampler-model", "Exhaustive", "Sim. Anneal.", "Auto-Tuner"
    );
    for platform in PLATFORMS {
        let space = SearchSpace::for_cores(platform.total_cores);
        for (label, shadow) in [("Neighbor-SAGE", false), ("ShaDow-GCN", true)] {
            let n = paper_num_searches(platform.total_cores, shadow);
            let pct = 100.0 * n as f64 / space.len() as f64;
            println!(
                "{:<24} {:<15} {:>10} (100%) {:>9} ({:.0}%) {:>7} ({:.0}%)",
                platform_tag(&platform),
                label,
                space.len(),
                n,
                pct,
                n,
                pct
            );
        }
    }
    println!("\n(paper: 726 and 408 configurations; our enumeration rule yields 694 and 362 —");
    println!(" the 5-6% exploration budget is identical; see DESIGN.md.)\n");

    println!("=== Section VI-D: auto-tuner overhead ===\n");
    for platform in PLATFORMS {
        let space = SearchSpace::for_cores(platform.total_cores);
        let budget = paper_num_searches(platform.total_cores, true); // worst case
        let t0 = std::time::Instant::now();
        let mut bo = BayesOpt::new(space.clone(), 0);
        let mut spent_in_tuner = 0.0f64;
        for i in 0..budget {
            let s = std::time::Instant::now();
            let c = bo.suggest();
            spent_in_tuner += s.elapsed().as_secs_f64();
            // synthetic objective: shape does not matter for overhead
            let v = 1.0 + (c.n_proc as f64 - 5.0).powi(2) * 0.1 + i as f64 * 0.0;
            let s = std::time::Instant::now();
            bo.observe(c, v);
            spent_in_tuner += s.elapsed().as_secs_f64();
        }
        let wall = t0.elapsed().as_secs_f64();
        // Memory: GP stores O(n²) kernel + O(space) flags; count bytes.
        let n = budget;
        let approx_bytes = n * n * 8 * 2 + space.len() * (8 * 3 + 1) + n * (8 * 4);
        println!(
            "{:<24} {} searches: tuner time {:.3}s (wall {:.3}s), approx extra memory {:.2} MB",
            platform_tag(&platform),
            budget,
            spent_in_tuner,
            wall,
            approx_bytes as f64 / 1e6
        );
    }
    println!(
        "\n(paper, scikit-optimize in Python: 7.7-9.6s / 20MB on Ice Lake, 1.5-3.8s / 10MB on"
    );
    println!(" Sapphire Rapids; the from-scratch Rust GP is orders of magnitude cheaper, well");
    println!(" under the paper's <1%-of-training-time bound.)");
}
