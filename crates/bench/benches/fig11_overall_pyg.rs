//! **Figure 11** — overall training time (200 epochs) of PyG vs PyG+ARGO
//! across all eight tasks on both platforms.

fn main() {
    argo_bench::overall_performance(argo_platform::Library::Pyg);
}
