//! **Figure 5** — the toy example: "Reducing the batch size increases the
//! workload". A mini-batch of {Node 0, Node 1} shares neighbor Node 2
//! (which aggregates Nodes 3 and 4); computed once for the joint batch, but
//! twice when the batch is split — the per-seed workload grows.
//!
//! Reproduced exactly with the real NeighborSampler on the paper's toy
//! graph, then at scale on a synthetic ogbn-products.

use argo_graph::Graph;
use argo_sample::{NeighborSampler, Sampler};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    println!("=== Figure 5: splitting a mini-batch duplicates shared-neighbor work ===\n");
    // The toy graph: seeds 0 and 1 both neighbor node 2; node 2 aggregates
    // nodes 3 and 4.
    let g = Graph::from_edges(5, &[(0, 2), (1, 2), (2, 3), (2, 4)], true);
    let sampler = NeighborSampler::new(vec![4, 4]); // fanout ≥ degrees: deterministic
    let mut rng = SmallRng::seed_from_u64(0);

    let joint = sampler.sample(&g, &[0, 1], &mut rng);
    let split_a = sampler.sample(&g, &[0], &mut rng);
    let split_b = sampler.sample(&g, &[1], &mut rng);

    let joint_edges = joint.total_edges(2);
    let split_edges = split_a.total_edges(2) + split_b.total_edges(2);
    let joint_inputs = joint.input_nodes().len();
    let split_inputs = split_a.input_nodes().len() + split_b.input_nodes().len();

    println!("joint batch {{0,1}}: {joint_edges} aggregation edges, {joint_inputs} input nodes");
    println!(
        "split batches {{0}},{{1}}: {split_edges} aggregation edges, {split_inputs} input nodes"
    );
    println!(
        "-> splitting inflates the workload {:.2}x (node 2's aggregation of nodes 3,4 is computed twice)\n",
        split_edges as f64 / joint_edges as f64
    );
    assert!(split_edges > joint_edges);
    assert!(split_inputs > joint_inputs);

    // The same effect at scale (feeds Figure 6).
    let d = argo_graph::datasets::OGBN_PRODUCTS.synthesize(0.002, 3);
    let paper_sampler = NeighborSampler::paper_default();
    let seeds: Vec<u32> = d.train_nodes.iter().copied().take(256).collect();
    let joint = paper_sampler
        .sample(&d.graph, &seeds, &mut SmallRng::seed_from_u64(1))
        .total_edges(3);
    let mut split = 0usize;
    for chunk in seeds.chunks(32) {
        split += paper_sampler
            .sample(&d.graph, chunk, &mut SmallRng::seed_from_u64(1))
            .total_edges(3);
    }
    println!("at scale (synthetic products, batch 256 vs 8x32):");
    println!(
        "  joint {joint} edges, split {split} edges ({:.2}x)",
        split as f64 / joint as f64
    );
    assert!(split as f64 > joint as f64 * 1.01);
}
