//! **Figure 5** — the toy example: "Reducing the batch size increases the
//! workload". A mini-batch of {Node 0, Node 1} shares neighbor Node 2
//! (which aggregates Nodes 3 and 4); computed once for the joint batch, but
//! twice when the batch is split — the per-seed workload grows.
//!
//! Reproduced exactly with the real NeighborSampler on the paper's toy
//! graph, then at scale on a synthetic ogbn-products.

use std::time::Instant;

use argo_graph::Graph;
use argo_sample::{FeatureCache, NeighborSampler, Sampler};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    println!("=== Figure 5: splitting a mini-batch duplicates shared-neighbor work ===\n");
    // The toy graph: seeds 0 and 1 both neighbor node 2; node 2 aggregates
    // nodes 3 and 4.
    let g = Graph::from_edges(5, &[(0, 2), (1, 2), (2, 3), (2, 4)], true);
    let sampler = NeighborSampler::new(vec![4, 4]); // fanout ≥ degrees: deterministic
    let mut rng = SmallRng::seed_from_u64(0);

    let joint = sampler.sample(&g, &[0, 1], &mut rng);
    let split_a = sampler.sample(&g, &[0], &mut rng);
    let split_b = sampler.sample(&g, &[1], &mut rng);

    let joint_edges = joint.total_edges(2);
    let split_edges = split_a.total_edges(2) + split_b.total_edges(2);
    let joint_inputs = joint.input_nodes().len();
    let split_inputs = split_a.input_nodes().len() + split_b.input_nodes().len();

    println!("joint batch {{0,1}}: {joint_edges} aggregation edges, {joint_inputs} input nodes");
    println!(
        "split batches {{0}},{{1}}: {split_edges} aggregation edges, {split_inputs} input nodes"
    );
    println!(
        "-> splitting inflates the workload {:.2}x (node 2's aggregation of nodes 3,4 is computed twice)\n",
        split_edges as f64 / joint_edges as f64
    );
    assert!(split_edges > joint_edges);
    assert!(split_inputs > joint_inputs);

    // The same effect at scale (feeds Figure 6).
    let d = argo_graph::datasets::OGBN_PRODUCTS.synthesize(0.002, 3);
    let paper_sampler = NeighborSampler::paper_default();
    let seeds: Vec<u32> = d.train_nodes.iter().copied().take(256).collect();
    let joint = paper_sampler
        .sample(&d.graph, &seeds, &mut SmallRng::seed_from_u64(1))
        .total_edges(3);
    let mut split = 0usize;
    for chunk in seeds.chunks(32) {
        split += paper_sampler
            .sample(&d.graph, chunk, &mut SmallRng::seed_from_u64(1))
            .total_edges(3);
    }
    println!("at scale (synthetic products, batch 256 vs 8x32):");
    println!(
        "  joint {joint} edges, split {split} edges ({:.2}x)",
        split as f64 / joint as f64
    );
    assert!(split as f64 > joint as f64 * 1.01);

    // The flip side: the duplicated input nodes that splitting creates are
    // exactly what the cross-batch feature cache absorbs. Gather the split
    // batches' features with and without the cache over a few epochs and
    // compare the wall-clock of the gather stage.
    println!("\n=== feature cache on the shared-neighbor workload ===\n");
    let epochs = 3;
    let batches: Vec<Vec<u32>> = {
        let mut rng = SmallRng::seed_from_u64(2);
        seeds
            .chunks(32)
            .map(|chunk| {
                paper_sampler
                    .sample(&d.graph, chunk, &mut rng)
                    .input_nodes()
                    .to_vec()
            })
            .collect()
    };
    let total_rows: usize = batches.iter().map(Vec::len).sum();

    let t0 = Instant::now();
    for _ in 0..epochs {
        for ids in &batches {
            std::hint::black_box(d.features.gather(ids));
        }
    }
    let uncached = t0.elapsed().as_secs_f64();

    let cache = FeatureCache::new(d.graph.num_nodes(), d.feat_dim());
    let t0 = Instant::now();
    for _ in 0..epochs {
        for ids in &batches {
            std::hint::black_box(cache.gather(&d.features, ids));
        }
    }
    let cached = t0.elapsed().as_secs_f64();
    let stats = cache.stats();

    println!(
        "{} batches x {epochs} epochs, {} feature rows gathered per epoch",
        batches.len(),
        total_rows
    );
    println!(
        "  hit rate {:.1}% ({} hits / {} lookups), {} evictions",
        stats.hit_rate() * 100.0,
        stats.hits,
        stats.lookups(),
        stats.evictions
    );
    println!(
        "  raw copy loop: uncached {:.1} ms, cached {:.1} ms (both RAM-hot here)",
        uncached * 1e3,
        cached * 1e3
    );

    // What the hit rate buys at paper scale: every hit is a feature-store
    // read that never happens, and the gather stage is memory-bandwidth
    // bound (Figure 2/6), so store traffic converts directly to gather time
    // on the platform's effective DRAM bandwidth.
    let row_bytes = (d.feat_dim() * std::mem::size_of::<f32>()) as f64;
    let traffic_uncached = stats.lookups() as f64 * row_bytes;
    let traffic_cached = stats.misses as f64 * row_bytes;
    let bw = argo_platform::ICE_LAKE_8380H.effective_bw_gbs() * 1e9;
    println!(
        "  feature-store traffic: {:.1} MB -> {:.1} MB ({:.1}x less)",
        traffic_uncached / 1e6,
        traffic_cached / 1e6,
        traffic_uncached / traffic_cached.max(1.0)
    );
    println!(
        "  gather stage at Ice Lake DRAM bandwidth: {:.3} ms -> {:.3} ms",
        traffic_uncached / bw * 1e3,
        traffic_cached / bw * 1e3
    );
    // Shared neighborhoods within an epoch plus cross-epoch reuse must push
    // the hit rate past one half on the default synthetic workload — i.e.
    // the cache removes more than half of the gather stage's DRAM traffic.
    assert!(
        stats.hit_rate() > 0.5,
        "expected hit rate > 0.5, got {:.3}",
        stats.hit_rate()
    );
    assert!(traffic_cached < 0.5 * traffic_uncached);
}
