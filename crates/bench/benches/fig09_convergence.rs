//! **Figure 9** — correctness: the convergence curve of ARGO overlaps the
//! original single-process curve, for 2/3/4 processes. Real training on a
//! scaled-down synthetic ogbn-products with planted community labels;
//! validation accuracy is plotted against the number of mini-batches
//! executed.

use std::sync::Arc;

use argo_engine::{evaluate_accuracy, Engine, EngineOptions};
use argo_graph::datasets::OGBN_PRODUCTS;
use argo_nn::OptimizerKind;
use argo_rt::Config;
use argo_sample::NeighborSampler;

fn curve(n_proc: usize, epochs: usize) -> Vec<(usize, f64)> {
    let dataset = Arc::new(OGBN_PRODUCTS.synthesize(0.0015, 19));
    let sampler: Arc<dyn argo_sample::Sampler> = Arc::new(NeighborSampler::new(vec![10, 5]));
    let mut engine = Engine::new(
        Arc::clone(&dataset),
        sampler,
        EngineOptions {
            hidden: 32,
            num_layers: 2,
            global_batch: 512,
            optimizer: OptimizerKind::Adam,
            lr: 5e-3,
            seed: 3,
            total_cores: (2 * n_proc).max(4),
            ..Default::default()
        },
    );
    let mut out = Vec::new();
    let mut minibatches = 0usize;
    out.push((
        0,
        evaluate_accuracy(&engine.model(), &dataset, &dataset.val_nodes),
    ));
    for _ in 0..epochs {
        let stats = engine.train_epoch(Config::new(n_proc, 1, 1), None);
        minibatches += stats.minibatches;
        out.push((
            minibatches,
            evaluate_accuracy(&engine.model(), &dataset, &dataset.val_nodes),
        ));
    }
    out
}

fn main() {
    println!("=== Figure 9: convergence of ARGO vs original (accuracy vs #mini-batches) ===\n");
    let epochs = 12;
    let baseline = curve(1, epochs);
    let mut curves = vec![("DGL (1 proc)".to_string(), baseline.clone())];
    for n in [2usize, 3, 4] {
        curves.push((format!("ARGO:{n}"), curve(n, epochs)));
    }
    println!(
        "{:<14} accuracy after each epoch (x = cumulative mini-batches)",
        "run"
    );
    for (name, c) in &curves {
        let pts: Vec<String> = c
            .iter()
            .map(|(mb, acc)| format!("{}:{:.3}", mb, acc))
            .collect();
        println!("{:<14} {}", name, pts.join("  "));
    }
    // Quantify the overlap: final accuracies must agree closely with the
    // 1-process curve, and the whole curves must track each other.
    let final_base = baseline.last().unwrap().1;
    println!("\nfinal accuracy, 1 process: {final_base:.4}");
    for (name, c) in curves.iter().skip(1) {
        let f = c.last().unwrap().1;
        let max_gap = baseline
            .iter()
            .zip(c)
            .skip(2) // early epochs are noisy at tiny scale
            .map(|(a, b)| (a.1 - b.1).abs())
            .fold(0.0f64, f64::max);
        println!("{name}: final {f:.4}  (max accuracy gap vs 1-proc after warm-up: {max_gap:.4})");
        assert!(
            (f - final_base).abs() < 0.08,
            "{name}: final accuracy {f} diverged from single-process {final_base}"
        );
    }
    println!("\nThe curves overlap: ARGO preserves the GNN training semantics regardless of");
    println!("the number of processes instantiated (effective batch size is kept constant).");
}
