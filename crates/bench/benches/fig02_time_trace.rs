//! **Figure 2** — time-trace of (A) a single GNN training process and
//! (B) two processes in parallel, on a real (scaled-down) training run.
//! With two processes, the memory-intensive phases (sampling/gather) of one
//! process overlap the compute phases of the other.

use std::sync::Arc;

use argo_engine::{Engine, EngineOptions};
use argo_graph::datasets::OGBN_PRODUCTS;
use argo_rt::{Config, Stage, TraceRecorder};
use argo_sample::NeighborSampler;

fn run_trace(n_proc: usize) -> (Arc<TraceRecorder>, f64) {
    let dataset = Arc::new(OGBN_PRODUCTS.synthesize(0.002, 7));
    let sampler: Arc<dyn argo_sample::Sampler> = Arc::new(NeighborSampler::new(vec![10, 5]));
    let mut engine = Engine::new(
        dataset,
        sampler,
        EngineOptions {
            hidden: 32,
            num_layers: 2,
            global_batch: 256,
            total_cores: 2 * n_proc.max(2),
            seed: 1,
            ..Default::default()
        },
    );
    let trace = Arc::new(TraceRecorder::new());
    let tel = argo_rt::Telemetry::with_trace(Arc::clone(&trace));
    let stats = engine.train_epoch(Config::new(n_proc, 1, 1), Some(&tel));
    (trace, stats.epoch_time)
}

fn render(trace: &TraceRecorder, horizon: f64, n_proc: usize) {
    const COLS: usize = 96;
    for p in 0..n_proc {
        for stage in [Stage::Sample, Stage::Gather, Stage::Compute, Stage::Sync] {
            let mut row = vec!['.'; COLS];
            for ev in trace.events() {
                if ev.process != p || ev.stage != stage {
                    continue;
                }
                let lo = ((ev.start / horizon) * COLS as f64) as usize;
                let hi = (((ev.end / horizon) * COLS as f64).ceil() as usize).min(COLS);
                let ch = match stage {
                    Stage::Sample => 's',
                    Stage::Gather => 'g',
                    Stage::Compute => 'C',
                    Stage::Sync => '|',
                };
                for c in row.iter_mut().take(hi.max(lo + 1).min(COLS)).skip(lo) {
                    *c = ch;
                }
            }
            println!(
                "  P{p} {:>7}: {}",
                stage.label(),
                row.iter().collect::<String>()
            );
        }
    }
}

fn main() {
    println!("=== Figure 2: time-trace, single process vs two processes ===");
    println!("(s = sampling, g = gather/index_select, C = compute, | = gradient sync)\n");

    println!("(A) one GNN training process:");
    let (trace1, t1) = run_trace(1);
    render(&trace1, t1, 1);
    println!(
        "  memory/compute overlap fraction: {:.2} (single process cannot overlap)\n",
        trace1.overlap_fraction(t1)
    );

    println!("(B) two GNN training processes:");
    let (trace2, t2) = run_trace(2);
    render(&trace2, t2, 2);
    let overlap = trace2.overlap_fraction(t2);
    println!("  memory/compute overlap fraction: {overlap:.2} (communication of one process hides under computation of the other)");
    assert!(
        overlap > 0.0,
        "two processes must exhibit memory/compute overlap"
    );
    // Export the two-process trace for chrome://tracing / Perfetto.
    let out_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&out_dir).is_ok() {
        let path = out_dir.join("fig02_trace.json");
        if std::fs::write(&path, trace2.to_chrome_json()).is_ok() {
            println!("\n  chrome-trace written to {}", path.display());
        }
    }
}
