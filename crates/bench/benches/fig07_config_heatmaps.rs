//! **Figure 7** — the optimal configuration varies across setups: epoch-time
//! heatmaps over (number of processes × number of sampling cores), training
//! cores held constant, for eight (sampler-model / dataset / platform)
//! setups. The dark-blue optimum of the paper is marked `*` here.

use argo_bench::{platform_tag, PLATFORMS, SAMPLER_MODELS};
use argo_graph::datasets::{OGBN_PRODUCTS, REDDIT};
use argo_platform::{Library, PerfModel, Setup};
use argo_rt::Config;

fn main() {
    println!("=== Figure 7: optimal configuration across setups ===");
    println!("rows: sampling cores (1..4); cols: processes (2..8); value: epoch time (s)");
    println!("training cores fixed at 8 per process; '*' marks the minimum\n");
    for platform in PLATFORMS {
        for (sampler, modelk) in SAMPLER_MODELS {
            for dataset in [REDDIT, OGBN_PRODUCTS] {
                let m = PerfModel::new(Setup {
                    platform,
                    library: Library::Dgl,
                    sampler,
                    model: modelk,
                    dataset,
                });
                println!("-- {} | {} --", platform_tag(&platform), m.setup().label());
                let t_fixed = 8usize;
                // Find the grid minimum first.
                let mut best = (0usize, 0usize, f64::INFINITY);
                for s in 1..=4usize {
                    for p in 2..=8usize {
                        let c = Config::new(p, s, t_fixed);
                        if !c.fits(platform.total_cores) {
                            continue;
                        }
                        let t = m.epoch_time(c);
                        if t < best.2 {
                            best = (p, s, t);
                        }
                    }
                }
                print!("{:>8}", "samp\\proc");
                for p in 2..=8usize {
                    print!("{p:>9}");
                }
                println!();
                for s in 1..=4usize {
                    print!("{s:>8} ");
                    for p in 2..=8usize {
                        let c = Config::new(p, s, t_fixed);
                        if !c.fits(platform.total_cores) {
                            print!("{:>9}", "-");
                            continue;
                        }
                        let t = m.epoch_time(c);
                        let mark = if (p, s) == (best.0, best.1) { '*' } else { ' ' };
                        print!("{:>8.2}{}", t, mark);
                    }
                    println!();
                }
                println!(
                    "   optimum: {} processes x {} sampling cores ({:.2}s)\n",
                    best.0, best.1, best.2
                );
            }
        }
    }
    println!("The optimum shifts across setups (2-8 processes, 1-4 sampling cores) with no");
    println!("single pattern — the paper's argument for learning a distinct model per setup.");
}
