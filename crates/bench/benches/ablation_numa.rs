//! **Section IX extension** — NUMA-aware core binding and data placement.
//!
//! The paper's profiling found that more than half of ARGO's memory accesses
//! on the 4-socket Ice Lake crossed the UPI links, capping bandwidth and
//! flattening the scaling curves past 64 cores; making ARGO NUMA-aware is
//! its stated future work. This bench evaluates that extension in the
//! platform model: processes pinned socket-locally
//! (`CoreBinder::plan_numa`) with node-local feature shards vs the plain
//! contiguous plan.

use argo_bench::{platform_tag, DATASETS, PLATFORMS, SAMPLER_MODELS};
use argo_platform::{Library, PerfModel, Setup};
use argo_rt::{enumerate_space, CoreBinder};

fn main() {
    println!("=== Section IX extension: NUMA-aware binding vs plain contiguous binding ===\n");
    // First: the binder itself.
    let binder = CoreBinder::new(112);
    let plan = binder.plan_numa(4, 8, 2, 6).expect("8x(2+6) fits 4x28");
    println!("socket-local plan for 8 processes x (2 samp + 6 train) on 4x28 cores:");
    for (p, b) in plan.iter().enumerate() {
        let socket = binder.socket_of(b.sampling.ids()[0], 4);
        println!(
            "  process {p}: socket {socket}, sampling {}, training {}",
            b.sampling, b.training
        );
    }

    println!("\nepoch-time gain of NUMA-aware deployment (best config per task):");
    println!(
        "{:<24} {:<26} {:>12} {:>12} {:>8}",
        "platform", "task", "plain (s)", "aware (s)", "gain"
    );
    for platform in PLATFORMS {
        for (sampler, model) in SAMPLER_MODELS {
            for dataset in DATASETS {
                let m = PerfModel::new(Setup {
                    platform,
                    library: Library::Pyg, // heavier memory traffic
                    sampler,
                    model,
                    dataset,
                });
                // Best configuration under each deployment.
                let space = enumerate_space(platform.total_cores);
                let plain = space
                    .iter()
                    .map(|&c| m.epoch_time(c))
                    .fold(f64::INFINITY, f64::min);
                let aware = space
                    .iter()
                    .map(|&c| m.epoch_time_numa_aware(c))
                    .fold(f64::INFINITY, f64::min);
                println!(
                    "{:<24} {:<26} {:>12.2} {:>12.2} {:>7.2}%",
                    platform_tag(&platform),
                    format!("{}-{} {}", sampler.name(), model.name(), dataset.name),
                    plain,
                    aware,
                    (plain / aware - 1.0) * 100.0
                );
                assert!(aware <= plain + 1e-9, "NUMA awareness must never hurt");
            }
        }
    }
    println!("\nGains concentrate on the 4-socket Ice Lake and on gather-heavy tasks, and are");
    println!("bounded by how often the UPI ceiling (rather than per-batch overhead or the");
    println!("sampler) is the binding constraint — consistent with the paper's observation");
    println!("that the remote-access share, not raw bandwidth, limits scaling past 64 cores.");
}
