//! GraphSAINT-style random-walk sampler (Zeng et al. 2020 — reference 18
//! of the paper, the source of the Flickr/Reddit datasets).
//!
//! For a batch of root nodes, performs `walk_length` random-walk steps from
//! every root and trains on the subgraph induced by all visited nodes. Like
//! ShaDow, the model runs all of its layers inside the subgraph, so the
//! sampler reuses [`SubgraphBatch`].

use argo_graph::{Graph, NodeId};
use argo_rt::{SeedSequence, StreamRng};

use crate::scratch::{arena_induced, SamplerScratch};
use crate::view::SampledBatchView;
use crate::{SampleRun, Sampler};

/// Random-walk subgraph sampler.
#[derive(Clone, Debug)]
pub struct SaintRwSampler {
    walk_length: usize,
    num_layers: usize,
}

impl SaintRwSampler {
    /// Walks of `walk_length` steps; the GNN that consumes the batches has
    /// `num_layers` layers.
    pub fn new(walk_length: usize, num_layers: usize) -> Self {
        assert!(walk_length >= 1 && num_layers >= 1);
        Self {
            walk_length,
            num_layers,
        }
    }

    /// The GraphSAINT paper's common setting: walk length 2 (its roots
    /// default is the batch size, which here comes from the loader).
    pub fn paper_default(num_layers: usize) -> Self {
        Self::new(2, num_layers)
    }

    /// Configured walk length.
    pub fn walk_length(&self) -> usize {
        self.walk_length
    }

    /// Discovery phase: `walk_length` random-walk steps from every root,
    /// dedup-registered in visit order with seeds first. Appends to `nodes`
    /// and leaves the dedup session ready for induced assembly.
    pub(crate) fn discover_into(
        &self,
        graph: &Graph,
        seeds: &[NodeId],
        stream: SeedSequence,
        scratch: &mut SamplerScratch,
        nodes: &mut Vec<NodeId>,
    ) {
        scratch.begin_dedup(graph.num_nodes());
        nodes.extend_from_slice(seeds);
        for (i, &v) in seeds.iter().enumerate() {
            assert!(scratch.dedup_insert(v, i as u32), "duplicate seed {v}");
        }
        for (ri, &root) in seeds.iter().enumerate() {
            // One counter stream per root: the walk a root takes depends
            // only on its position in the batch.
            let mut rng = StreamRng::new(stream.seed_for(0, ri as u64));
            let mut cur = root;
            for _ in 0..self.walk_length {
                let neigh = graph.neighbors(cur);
                if neigh.is_empty() {
                    break;
                }
                cur = neigh[rng.index(neigh.len())];
                if scratch.dedup_insert(cur, nodes.len() as u32) {
                    nodes.push(cur);
                }
            }
        }
    }
}

impl Sampler for SaintRwSampler {
    fn sample_into<'a>(
        &self,
        graph: &Graph,
        seeds: &[NodeId],
        run: SampleRun<'a>,
    ) -> SampledBatchView<'a> {
        // Dedup-dominated like ShaDow; the pool is intentionally unused.
        let SampleRun {
            stream,
            norm,
            scratch,
            ..
        } = run;
        let caps_before = scratch.arena.caps();
        let mut arena = std::mem::take(&mut scratch.arena);
        arena.begin(seeds.len(), norm);
        self.discover_into(graph, seeds, stream, scratch, &mut arena.nodes);
        arena_induced(graph, &mut arena, scratch, norm);
        scratch.note_growth(arena.caps() > caps_before);
        scratch.arena = arena;
        let scratch_ref: &'a SamplerScratch = scratch;
        SampledBatchView::subgraph(&scratch_ref.arena)
    }

    fn name(&self) -> &'static str {
        "SAINT-RW"
    }

    fn num_layers(&self) -> usize {
        self.num_layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::SampledBatch;
    use crate::batch::SubgraphBatch;
    use argo_graph::generators::power_law;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn subgraph(b: SampledBatch) -> SubgraphBatch {
        match b {
            SampledBatch::Subgraph(s) => s,
            _ => panic!("expected subgraph"),
        }
    }

    #[test]
    fn walk_visits_connected_nodes() {
        let g = power_law(300, 3000, 0.8, 1);
        let s = SaintRwSampler::new(3, 2);
        let sb = subgraph(s.sample(&g, &[1, 2, 3], &mut SmallRng::seed_from_u64(4)));
        assert_eq!(&sb.nodes[..3], &[1, 2, 3]);
        // Bounded by roots · (walk_length + 1).
        assert!(sb.nodes.len() <= 3 * 4);
        for i in 0..sb.adj.rows() {
            for k in sb.adj.indptr()[i]..sb.adj.indptr()[i + 1] {
                let u = sb.nodes[sb.adj.indices()[k] as usize];
                assert!(g.has_edge(sb.nodes[i], u));
            }
        }
    }

    #[test]
    fn deterministic_in_rng() {
        let g = power_law(200, 2000, 0.8, 2);
        let s = SaintRwSampler::paper_default(2);
        let a = subgraph(s.sample(&g, &[5, 6], &mut SmallRng::seed_from_u64(7)));
        let b = subgraph(s.sample(&g, &[5, 6], &mut SmallRng::seed_from_u64(7)));
        assert_eq!(a.nodes, b.nodes);
    }

    #[test]
    fn isolated_root_stays_alone() {
        let g = Graph::from_edges(4, &[(0, 1)], true);
        let s = SaintRwSampler::new(5, 2);
        let sb = subgraph(s.sample(&g, &[3], &mut SmallRng::seed_from_u64(1)));
        assert_eq!(sb.nodes, vec![3]);
        assert_eq!(sb.adj.nnz(), 0);
    }

    #[test]
    fn longer_walks_visit_more() {
        let g = power_law(500, 8000, 0.7, 3);
        let seeds: Vec<NodeId> = (0..16).collect();
        let short =
            subgraph(SaintRwSampler::new(1, 2).sample(&g, &seeds, &mut SmallRng::seed_from_u64(9)));
        let long =
            subgraph(SaintRwSampler::new(6, 2).sample(&g, &seeds, &mut SmallRng::seed_from_u64(9)));
        assert!(long.nodes.len() > short.nodes.len());
    }
}
