//! Cluster-GCN sampling (Chiang et al. 2019 — reference 17 of the paper).
//!
//! The graph is pre-partitioned into locality clusters (BFS blocks — the
//! same "METIS-like" machinery as `argo_graph::partition`); a mini-batch is
//! the subgraph induced by the union of the clusters containing the batch's
//! seeds. All GNN layers run inside that subgraph, so [`SubgraphBatch`] is
//! reused; the loss is evaluated at the seed positions.

use argo_graph::partition::bfs_partition;
use argo_graph::{Graph, NodeId};
use argo_tensor::SparseMatrix;

use crate::batch::{Normalization, SampledBatch, SubgraphBatch};
use crate::scratch::{arena_induced, SamplerScratch};
use crate::view::SampledBatchView;
use crate::{SampleRun, Sampler};

/// Cluster-based subgraph sampler with a precomputed clustering.
#[derive(Clone, Debug)]
pub struct ClusterGcnSampler {
    node_cluster: Vec<u32>,
    clusters: Vec<Vec<NodeId>>,
    num_layers: usize,
    /// Cap on subgraph size (nodes) to bound worst-case batches.
    max_nodes: usize,
}

impl ClusterGcnSampler {
    /// Pre-partitions `graph` into `num_clusters` BFS-locality clusters.
    pub fn new(graph: &Graph, num_clusters: usize, num_layers: usize) -> Self {
        assert!(num_clusters >= 1 && num_layers >= 1);
        let all: Vec<NodeId> = (0..graph.num_nodes() as NodeId).collect();
        let clusters = bfs_partition(graph, &all, num_clusters);
        let mut node_cluster = vec![0u32; graph.num_nodes()];
        for (c, members) in clusters.iter().enumerate() {
            for &v in members {
                node_cluster[v as usize] = c as u32;
            }
        }
        Self {
            node_cluster,
            clusters,
            num_layers,
            max_nodes: (graph.num_nodes() / 2).max(64),
        }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Cluster id of a node.
    pub fn cluster_of(&self, v: NodeId) -> u32 {
        self.node_cluster[v as usize]
    }

    /// Discovery phase: the union of the clusters the seeds live in, seeds
    /// first, capped at `max_nodes`. Entirely deterministic. Appends to
    /// `nodes` and leaves the dedup session ready for induced assembly.
    pub(crate) fn discover_into(
        &self,
        graph: &Graph,
        seeds: &[NodeId],
        scratch: &mut SamplerScratch,
        nodes: &mut Vec<NodeId>,
    ) {
        scratch.begin_dedup(graph.num_nodes());
        nodes.extend_from_slice(seeds);
        for (i, &v) in seeds.iter().enumerate() {
            assert!(scratch.dedup_insert(v, i as u32), "duplicate seed {v}");
        }
        // Distinct cluster ids in ascending order: collect into the recycled
        // buffer, then sort + dedup (replaces the old per-batch BTreeSet).
        scratch.acquire_chosen(seeds.len());
        let mut chosen = std::mem::take(&mut scratch.chosen);
        for &v in seeds {
            chosen.push(self.node_cluster[v as usize]);
        }
        chosen.sort_unstable();
        chosen.dedup();
        'outer: for &c in &chosen {
            for &v in &self.clusters[c as usize] {
                if nodes.len() >= self.max_nodes {
                    break 'outer;
                }
                if scratch.dedup_insert(v, nodes.len() as u32) {
                    nodes.push(v);
                }
            }
        }
        scratch.chosen = chosen;
    }
}

impl Sampler for ClusterGcnSampler {
    fn sample_into<'a>(
        &self,
        graph: &Graph,
        seeds: &[NodeId],
        run: SampleRun<'a>,
    ) -> SampledBatchView<'a> {
        // The RNG stream and pool are unused — see `discover_into`.
        let SampleRun { norm, scratch, .. } = run;
        let caps_before = scratch.arena.caps();
        let mut arena = std::mem::take(&mut scratch.arena);
        arena.begin(seeds.len(), norm);
        self.discover_into(graph, seeds, scratch, &mut arena.nodes);
        arena_induced(graph, &mut arena, scratch, norm);
        scratch.note_growth(arena.caps() > caps_before);
        scratch.arena = arena;
        let scratch_ref: &'a SamplerScratch = scratch;
        SampledBatchView::subgraph(&scratch_ref.arena)
    }

    fn name(&self) -> &'static str {
        "ClusterGCN"
    }

    fn num_layers(&self) -> usize {
        self.num_layers
    }
}

/// Builds a full-graph "batch": the whole graph as one [`SubgraphBatch`]
/// with the given training targets as seeds — the full-graph training mode
/// the paper contrasts with mini-batch training (Section II-B).
pub fn full_graph_batch(graph: &Graph, train_nodes: &[NodeId]) -> SampledBatch {
    let n = graph.num_nodes();
    let adj = SparseMatrix::new(
        n,
        n,
        graph.indptr().to_vec(),
        graph.indices().to_vec(),
        None,
    );
    let degree = (0..n).map(|v| graph.degree(v as NodeId) as f32).collect();
    SampledBatch::Subgraph(SubgraphBatch {
        nodes: (0..n as NodeId).collect(),
        adj,
        seed_positions: train_nodes.iter().map(|&v| v as usize).collect(),
        seeds: train_nodes.to_vec(),
        degree,
        norm: Normalization::None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_graph::generators::planted_communities;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn subgraph(b: SampledBatch) -> SubgraphBatch {
        match b {
            SampledBatch::Subgraph(s) => s,
            _ => panic!("expected subgraph"),
        }
    }

    #[test]
    fn clusters_cover_all_nodes() {
        let g = planted_communities(400, 3000, 4, 0.9, 1);
        let s = ClusterGcnSampler::new(&g, 8, 2);
        assert_eq!(s.num_clusters(), 8);
        let total: usize = s.clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn batch_contains_seed_clusters() {
        let g = planted_communities(400, 3000, 4, 0.9, 2);
        let s = ClusterGcnSampler::new(&g, 8, 2);
        let seeds = [0u32, 100, 200];
        let sb = subgraph(s.sample(&g, &seeds, &mut SmallRng::seed_from_u64(1)));
        assert_eq!(&sb.nodes[..3], &seeds[..]);
        // Every member of a seed's cluster appears (no cap hit at this size).
        for &v in &seeds {
            let c = s.cluster_of(v);
            for &m in &s.clusters[c as usize] {
                assert!(sb.nodes.contains(&m), "cluster member {m} missing");
            }
        }
        // Induced edges valid.
        for i in 0..sb.adj.rows() {
            for k in sb.adj.indptr()[i]..sb.adj.indptr()[i + 1] {
                assert!(g.has_edge(sb.nodes[i], sb.nodes[sb.adj.indices()[k] as usize]));
            }
        }
    }

    #[test]
    fn same_cluster_seeds_share_subgraph() {
        let g = planted_communities(300, 2400, 3, 0.9, 3);
        let s = ClusterGcnSampler::new(&g, 6, 2);
        // Find two seeds in the same cluster.
        let c0 = s.clusters[0].clone();
        let (a, b) = (c0[0], c0[1]);
        let mut rng = SmallRng::seed_from_u64(2);
        let sa = subgraph(s.sample(&g, &[a], &mut rng));
        let sab = subgraph(s.sample(&g, &[a, b], &mut rng));
        // The pair's subgraph is no larger than the single-cluster one + 1.
        assert!(sab.nodes.len() <= sa.nodes.len() + 1);
    }

    #[test]
    fn full_graph_batch_covers_everything() {
        let g = planted_communities(200, 1500, 4, 0.85, 4);
        let train: Vec<NodeId> = (0..200).step_by(3).collect();
        let b = full_graph_batch(&g, &train);
        assert_eq!(b.input_nodes().len(), 200);
        assert_eq!(b.num_seeds(), train.len());
        assert_eq!(b.total_edges(2), g.num_edges() * 2);
        let sb = subgraph(b);
        // Seed positions point at the right nodes.
        for (&pos, &v) in sb.seed_positions.iter().zip(&train) {
            assert_eq!(sb.nodes[pos], v);
        }
    }
}
