//! The legacy (pre-arena) batch assembly, preserved verbatim.
//!
//! Before the arena-CSR refactor, every sampler materialized its batch
//! through per-batch `Vec` growth — a fresh `src` edge list, `usize` row
//! pointers, a validating [`SparseMatrix::new`] conversion and two degree
//! collects per block. That *metadata tax* is what
//! [`Sampler::sample_into`](crate::Sampler::sample_into) eliminates; this
//! module keeps the old path alive for two consumers only:
//!
//! * the `sampler_properties` proptests, which pin the arena assembly
//!   **bitwise-equal** to this path across all four samplers;
//! * the `micro_sampling` benchmark, which times legacy vs arena assembly
//!   on identical node sets to report the assembly speedup.
//!
//! Nothing in the runtime calls into here. The module is exempt from the
//! `sampler-scratch` lint rule precisely because it preserves the
//! allocation behavior the hot path no longer has.

use argo_graph::{Graph, NodeId};
use argo_tensor::SparseMatrix;

use crate::batch::{Block, MiniBatch, Normalization, SampledBatch, SubgraphBatch};
use crate::neighbor::pick_layer;
use crate::scratch::{arena_induced, SamplerScratch};
use crate::{ClusterGcnSampler, NeighborSampler, SaintRwSampler, SampleRun, ShadowSampler};

/// Builds the induced, relabeled [`SubgraphBatch`] over `nodes` with
/// per-batch `Vec` growth — the legacy assembly. The scratch's *current*
/// dedup session is the relabel map (every entry of `nodes` must be
/// registered in it); fused normalization values are written during row
/// assembly.
pub fn induced_batch(
    graph: &Graph,
    nodes: Vec<NodeId>,
    seed_positions: Vec<usize>,
    seeds: Vec<NodeId>,
    scratch: &SamplerScratch,
    norm: Normalization,
) -> SubgraphBatch {
    let inv_sqrt: &[f32] = if norm == Normalization::Gcn {
        graph.inv_sqrt_degrees()
    } else {
        &[]
    };
    let n = nodes.len();
    let mut indptr = Vec::with_capacity(n + 1);
    indptr.push(0usize);
    let mut indices: Vec<u32> = Vec::new();
    let mut values: Option<Vec<f32>> = (norm != Normalization::None).then(Vec::new);
    for &v in &nodes {
        let start = indices.len();
        for &u in graph.neighbors(v) {
            if let Some(j) = scratch.dedup_get(u) {
                indices.push(j);
            }
        }
        // The graph's adjacency is sorted by *global* id; local ids follow
        // discovery order, so re-sort the row segment in place.
        indices[start..].sort_unstable();
        if let Some(vals) = &mut values {
            let cnt = indices.len() - start;
            if norm == Normalization::Mean {
                let inv = 1.0 / (cnt.max(1)) as f32;
                for _ in 0..cnt {
                    vals.push(inv);
                }
            } else {
                let dv = inv_sqrt[v as usize];
                for &j in &indices[start..] {
                    vals.push(dv * inv_sqrt[nodes[j as usize] as usize]);
                }
            }
        }
        indptr.push(indices.len());
    }
    let adj = SparseMatrix::new(n, n, indptr, indices, values);
    let degree = nodes.iter().map(|&v| graph.degree(v) as f32).collect();
    SubgraphBatch {
        nodes,
        adj,
        seed_positions,
        seeds,
        degree,
        norm,
    }
}

/// The legacy layered assembly of [`NeighborSampler`]: per layer a fresh
/// `src` list grown through dedup, per-batch `indptr`/`indices`/`values`
/// `Vec`s, a validating [`SparseMatrix::new`], two degree collects and a
/// copy of `src` into the next layer's `dst`. Shares the pick phase with
/// the arena path, so outputs differ only in how assembly materializes.
pub fn neighbor_sample(
    sampler: &NeighborSampler,
    graph: &Graph,
    seeds: &[NodeId],
    run: SampleRun<'_>,
) -> SampledBatch {
    let SampleRun {
        stream,
        norm,
        scratch,
        pool,
    } = run;
    let fanouts = sampler.fanouts();
    let num_layers = fanouts.len();
    let inv_sqrt: &[f32] = if norm == Normalization::Gcn {
        graph.inv_sqrt_degrees()
    } else {
        &[]
    };
    let mut blocks_rev: Vec<Block> = Vec::with_capacity(num_layers);
    let mut dst: Vec<NodeId> = seeds.to_vec();
    for layer in (0..num_layers).rev() {
        let fanout = fanouts[layer];
        let rows = dst.len();
        pick_layer(graph, &dst, fanout, stream, layer as u64, scratch, pool);
        scratch.begin_dedup(graph.num_nodes());
        let mut src: Vec<NodeId> = Vec::with_capacity(rows * (fanout / 2 + 1));
        src.extend_from_slice(&dst);
        for (i, &v) in dst.iter().enumerate() {
            scratch.dedup_insert(v, i as u32);
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        indptr.push(0usize);
        let mut indices: Vec<u32> = Vec::with_capacity(rows * fanout);
        let mut values: Option<Vec<f32>> =
            (norm != Normalization::None).then(|| Vec::with_capacity(rows * fanout));
        let picked = std::mem::take(&mut scratch.picked);
        let counts = std::mem::take(&mut scratch.counts);
        for i in 0..rows {
            let cnt = counts[i] as usize;
            let row = &picked[i * fanout..i * fanout + cnt];
            for &u in row {
                let idx = match scratch.dedup_get(u) {
                    Some(idx) => idx,
                    None => {
                        let idx = src.len() as u32;
                        scratch.dedup_insert(u, idx);
                        src.push(u);
                        idx
                    }
                };
                indices.push(idx);
            }
            if let Some(vals) = &mut values {
                if norm == Normalization::Mean {
                    let inv = 1.0 / (cnt.max(1)) as f32;
                    for _ in 0..cnt {
                        vals.push(inv);
                    }
                } else {
                    let dv = inv_sqrt[dst[i] as usize];
                    for &u in row {
                        vals.push(dv * inv_sqrt[u as usize]);
                    }
                }
            }
            indptr.push(indices.len());
        }
        scratch.picked = picked;
        scratch.counts = counts;
        let adj = SparseMatrix::new(rows, src.len(), indptr, indices, values);
        let dst_degree = dst.iter().map(|&v| graph.degree(v) as f32).collect();
        let src_degree = src.iter().map(|&v| graph.degree(v) as f32).collect();
        let mut next: Vec<NodeId> = Vec::with_capacity(src.len());
        next.extend_from_slice(&src);
        blocks_rev.push(Block {
            src_nodes: src,
            dst_nodes: dst,
            adj,
            dst_degree,
            src_degree,
            norm,
        });
        dst = next;
    }
    blocks_rev.reverse();
    SampledBatch::Blocks(MiniBatch {
        seeds: seeds.to_vec(),
        blocks: blocks_rev,
    })
}

/// Legacy ShaDow sampling: shared discovery + legacy induced assembly.
pub fn shadow_sample(
    sampler: &ShadowSampler,
    graph: &Graph,
    seeds: &[NodeId],
    run: SampleRun<'_>,
) -> SampledBatch {
    let SampleRun {
        stream,
        norm,
        scratch,
        ..
    } = run;
    let mut nodes: Vec<NodeId> = Vec::with_capacity(seeds.len() * 8);
    sampler.discover_into(graph, seeds, stream, scratch, &mut nodes);
    SampledBatch::Subgraph(induced_batch(
        graph,
        nodes,
        (0..seeds.len()).collect(),
        seeds.to_vec(),
        scratch,
        norm,
    ))
}

/// Legacy SAINT-RW sampling: shared discovery + legacy induced assembly.
pub fn saint_sample(
    sampler: &SaintRwSampler,
    graph: &Graph,
    seeds: &[NodeId],
    run: SampleRun<'_>,
) -> SampledBatch {
    let SampleRun {
        stream,
        norm,
        scratch,
        ..
    } = run;
    let mut nodes: Vec<NodeId> = Vec::with_capacity(seeds.len() * (sampler.walk_length() + 1));
    sampler.discover_into(graph, seeds, stream, scratch, &mut nodes);
    SampledBatch::Subgraph(induced_batch(
        graph,
        nodes,
        (0..seeds.len()).collect(),
        seeds.to_vec(),
        scratch,
        norm,
    ))
}

/// Legacy Cluster-GCN sampling: shared discovery + legacy induced assembly.
pub fn cluster_sample(
    sampler: &ClusterGcnSampler,
    graph: &Graph,
    seeds: &[NodeId],
    run: SampleRun<'_>,
) -> SampledBatch {
    let SampleRun { norm, scratch, .. } = run;
    let mut nodes: Vec<NodeId> = Vec::with_capacity(seeds.len() * 4);
    sampler.discover_into(graph, seeds, scratch, &mut nodes);
    SampledBatch::Subgraph(induced_batch(
        graph,
        nodes,
        (0..seeds.len()).collect(),
        seeds.to_vec(),
        scratch,
        norm,
    ))
}

/// Benchmark hook: one localized-subgraph discovery pass (ShaDow-style),
/// returning the discovered node set so assembly variants can be timed on
/// identical inputs.
pub fn bench_discover(
    graph: &Graph,
    seeds: &[NodeId],
    fanouts: Vec<usize>,
    stream: argo_rt::SeedSequence,
    scratch: &mut SamplerScratch,
) -> Vec<NodeId> {
    let sampler = ShadowSampler::new(fanouts, 1);
    let mut nodes = Vec::new();
    sampler.discover_into(graph, seeds, stream, scratch, &mut nodes);
    nodes
}

/// Benchmark hook: legacy induced assembly over a fixed node set (dedup
/// registration + edge-list build + `SparseMatrix::new`). Returns nnz.
pub fn bench_assembly_legacy(
    graph: &Graph,
    nodes: &[NodeId],
    n_seeds: usize,
    scratch: &mut SamplerScratch,
    norm: Normalization,
) -> usize {
    scratch.begin_dedup(graph.num_nodes());
    for (i, &v) in nodes.iter().enumerate() {
        scratch.dedup_insert(v, i as u32);
    }
    let batch = induced_batch(
        graph,
        nodes.to_vec(),
        (0..n_seeds).collect(),
        nodes[..n_seeds].to_vec(),
        scratch,
        norm,
    );
    batch.adj.nnz()
}

/// Benchmark hook: arena induced assembly over the same fixed node set
/// (dedup registration + in-place arena CSR build). Returns nnz.
pub fn bench_assembly_arena(
    graph: &Graph,
    nodes: &[NodeId],
    n_seeds: usize,
    scratch: &mut SamplerScratch,
    norm: Normalization,
) -> usize {
    scratch.begin_dedup(graph.num_nodes());
    for (i, &v) in nodes.iter().enumerate() {
        scratch.dedup_insert(v, i as u32);
    }
    let mut arena = std::mem::take(&mut scratch.arena);
    arena.begin(n_seeds, norm);
    arena.nodes.extend_from_slice(nodes);
    arena_induced(graph, &mut arena, scratch, norm);
    let nnz = arena.indices.len();
    scratch.arena = arena;
    nnz
}
