//! # argo-sample — mini-batch GNN samplers and the pipelined data loader
//!
//! Implements the two representative sampling algorithms the paper evaluates
//! (Section II-B):
//!
//! * [`NeighborSampler`] — layer-wise neighbor sampling with per-layer
//!   fanouts (the paper uses `[15, 10, 5]` for a 3-layer model);
//! * [`ShadowSampler`] — ShaDow-GNN style: build a localized subgraph around
//!   each seed (fanouts `[10, 5]`), then run *all* GNN layers inside it.
//!
//! Sampled batches come in two shapes ([`SampledBatch`]): a stack of
//! bipartite [`Block`]s (neighbor sampling) or one induced subgraph
//! ([`SubgraphBatch`], ShaDow). Both carry everything the model needs:
//! relabeled CSR adjacency, global input-node ids for feature gathering, and
//! degree information for GCN/SAGE normalization.
//!
//! [`loader::PipelinedLoader`] overlaps sampling with training — the
//! optimization whose core allocation ARGO auto-tunes — by prefetching
//! batches on dedicated sampler threads (bound to the *sampling cores*)
//! while the training cores consume them **in deterministic order**.

pub mod batch;
pub mod cache;
pub mod cluster;
pub mod loader;
pub mod neighbor;
pub mod saint;
pub mod shadow;
pub mod stats;

pub use batch::{Block, MiniBatch, SampledBatch, SubgraphBatch};
pub use cache::{CacheStats, FeatureCache};
pub use cluster::{full_graph_batch, ClusterGcnSampler};
pub use loader::{LoadedBatch, LoaderSpec, LoaderSpecBuilder, PipelinedLoader};
pub use neighbor::NeighborSampler;
pub use saint::SaintRwSampler;
pub use shadow::ShadowSampler;
pub use stats::{batch_workload, WorkloadStats};

use argo_graph::{Graph, NodeId};
use rand::rngs::SmallRng;

/// A mini-batch subgraph sampler.
pub trait Sampler: Send + Sync {
    /// Samples the computation structure for `seeds`.
    fn sample(&self, graph: &Graph, seeds: &[NodeId], rng: &mut SmallRng) -> SampledBatch;

    /// Human-readable name ("Neighbor", "ShaDow").
    fn name(&self) -> &'static str;

    /// Number of GNN layers this sampler prepares batches for.
    fn num_layers(&self) -> usize;
}
