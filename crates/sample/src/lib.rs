//! # argo-sample — mini-batch GNN samplers and the pipelined data loader
//!
//! Implements the two representative sampling algorithms the paper evaluates
//! (Section II-B):
//!
//! * [`NeighborSampler`] — layer-wise neighbor sampling with per-layer
//!   fanouts (the paper uses `[15, 10, 5]` for a 3-layer model);
//! * [`ShadowSampler`] — ShaDow-GNN style: build a localized subgraph around
//!   each seed (fanouts `[10, 5]`), then run *all* GNN layers inside it.
//!
//! Sampled batches come in two shapes ([`SampledBatch`]): a stack of
//! bipartite [`Block`]s (neighbor sampling) or one induced subgraph
//! ([`SubgraphBatch`], ShaDow). Both carry everything the model needs:
//! relabeled CSR adjacency, global input-node ids for feature gathering, and
//! degree information for GCN/SAGE normalization.
//!
//! [`loader::PipelinedLoader`] overlaps sampling with training — the
//! optimization whose core allocation ARGO auto-tunes — by prefetching
//! batches on dedicated sampler threads (bound to the *sampling cores*)
//! while the training cores consume them **in deterministic order**.

pub mod batch;
pub mod cache;
pub mod cluster;
pub mod legacy;
pub mod loader;
pub mod neighbor;
pub mod saint;
pub mod scratch;
pub mod shadow;
pub mod stats;
pub mod view;

pub use batch::{Block, MiniBatch, Normalization, SampledBatch, SubgraphBatch};
pub use cache::{CacheStats, FeatureCache};
pub use cluster::{full_graph_batch, ClusterGcnSampler};
pub use loader::{LoadedBatch, LoaderSpec, LoaderSpecBuilder, PipelinedLoader};
pub use neighbor::NeighborSampler;
pub use saint::SaintRwSampler;
pub use scratch::SamplerScratch;
pub use shadow::ShadowSampler;
pub use stats::{batch_workload, WorkloadStats};
pub use view::{BlockView, MiniBatchView, SampledBatchView, SubgraphView};

use argo_graph::{Graph, NodeId};
use argo_rt::{SeedSequence, ThreadPool};
use rand::rngs::SmallRng;
use rand::Rng;

/// Everything one [`Sampler::sample_with`] call needs beyond the graph and
/// the seeds: the deterministic RNG stream root, the normalization to fuse
/// into the adjacency values, the caller-owned scratch arena, and an
/// optional pool for within-batch parallelism.
pub struct SampleRun<'a> {
    /// Root of this batch's counter-based RNG streams. Samplers key
    /// per-row streams off `stream.seed_for(layer, row)`, so the draws a row
    /// consumes depend only on its logical coordinate — never on how rows
    /// were partitioned across pool workers.
    pub stream: SeedSequence,
    /// Normalization to write into the adjacency values during assembly.
    pub norm: Normalization,
    /// Recycled per-worker scratch buffers.
    pub scratch: &'a mut SamplerScratch,
    /// Pool for within-batch parallel sampling (the sampling core set).
    /// `None` runs serial; batch content is bitwise identical either way.
    pub pool: Option<&'a ThreadPool>,
}

impl<'a> SampleRun<'a> {
    /// A serial, unnormalized run.
    pub fn new(stream: SeedSequence, scratch: &'a mut SamplerScratch) -> Self {
        Self {
            stream,
            norm: Normalization::None,
            scratch,
            pool: None,
        }
    }

    /// Fuses `norm` into the sampled adjacency values.
    pub fn with_norm(mut self, norm: Normalization) -> Self {
        self.norm = norm;
        self
    }

    /// Row-partitions the per-layer pick phase across `pool`.
    pub fn with_pool(mut self, pool: Option<&'a ThreadPool>) -> Self {
        self.pool = pool;
        self
    }
}

/// A mini-batch subgraph sampler.
pub trait Sampler: Send + Sync {
    /// Samples the computation structure for `seeds`, assembling the batch
    /// **in place** inside the scratch's batch arena and returning a
    /// borrowed [`SampledBatchView`] over it. This is the hot path: the
    /// batch-local CSR lands as `u32` ranges directly from pick positions —
    /// no intermediate edge-list `Vec`s, no COO→CSR pass — and steady-state
    /// calls perform **zero** heap allocations, assembly included. The view
    /// borrows the scratch; call [`SampledBatchView::to_owned`] (or use
    /// [`Sampler::sample_with`]) when the batch must outlive the next
    /// sampling call on the same scratch.
    fn sample_into<'a>(
        &self,
        graph: &Graph,
        seeds: &[NodeId],
        run: SampleRun<'a>,
    ) -> SampledBatchView<'a>;

    /// Samples and materializes an owned [`SampledBatch`] — the fallback for
    /// callers that hand the batch across an ownership boundary (the
    /// loader's reorder channel, training backward passes). Bitwise
    /// identical to what the pre-arena assembly produced.
    fn sample_with(&self, graph: &Graph, seeds: &[NodeId], run: SampleRun<'_>) -> SampledBatch {
        self.sample_into(graph, seeds, run).to_owned()
    }

    /// Convenience wrapper: samples with throwaway scratch, seeding the
    /// stream from `rng`. Equivalent output distribution to
    /// [`Sampler::sample_with`]; prefer that in loops.
    fn sample(&self, graph: &Graph, seeds: &[NodeId], rng: &mut SmallRng) -> SampledBatch {
        let mut scratch = SamplerScratch::new();
        let stream = SeedSequence::new(rng.next_u64());
        self.sample_with(graph, seeds, SampleRun::new(stream, &mut scratch))
    }

    /// Human-readable name ("Neighbor", "ShaDow").
    fn name(&self) -> &'static str;

    /// Number of GNN layers this sampler prepares batches for.
    fn num_layers(&self) -> usize;
}
