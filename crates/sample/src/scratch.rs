//! Reusable per-worker sampler scratch state.
//!
//! Mirrors the tensor crate's workspace arena: every sampler obtains its
//! bookkeeping buffers — the dense dedup table, the per-row pick buffers,
//! Floyd position sets, BFS frontiers — from a [`SamplerScratch`] owned by
//! the calling worker, so the steady-state sampling loop performs **zero
//! per-batch heap allocations for sampler metadata**. The assembled batch
//! itself also lives here — `sample_into` builds its CSR directly in the
//! scratch's [`BatchArena`] and returns a borrowed
//! [`SampledBatchView`](crate::SampledBatchView); owned memory is spent
//! only where a batch must outlive the arena (`to_owned`, e.g. at the
//! loader's reorder-channel boundary).
//!
//! The dedup table is *epoch-stamped*: membership of node `v` is
//! `stamp[v] == generation`, so clearing between dedup sessions is a single
//! generation bump instead of an O(num_nodes) wipe or a `HashMap` rebuild.
//! The table resets itself on the (once per ~4 billion sessions) generation
//! wraparound.
//!
//! Growth is tracked by the same two counters the tensor workspace exposes:
//! an acquisition that must grow a buffer's capacity counts as an alloc,
//! one served from existing capacity counts as a reuse. The loader's
//! recycle test pins allocs to the first batch only.

use std::ops::Range;

use argo_graph::{Graph, NodeId};
use argo_rt::StreamRng;

use crate::batch::Normalization;

/// Scratch buffers recycled across [`Sampler::sample_with`](crate::Sampler)
/// calls.
#[derive(Debug, Default)]
pub struct SamplerScratch {
    /// Dense dedup table: `stamp[v] == generation` means `v` is present.
    stamp: Vec<u32>,
    /// Local (relabeled) index of `v`, valid only when stamped. Kept as a
    /// separate 4-byte lane (not packed with the stamp) so the assembly
    /// scatter — which resolves members only and never re-checks the stamp
    /// — streams through half the table footprint.
    slot: Vec<u32>,
    generation: u32,
    /// Flat per-row neighbor picks, stride `fanout`.
    pub(crate) picked: Vec<NodeId>,
    /// Number of valid picks per row.
    pub(crate) counts: Vec<u32>,
    /// Floyd sample of distinct in-row positions (serial pick path).
    pub(crate) positions: Vec<u32>,
    /// Current BFS frontier (ShaDow) / walk roots.
    pub(crate) frontier: Vec<NodeId>,
    /// Next BFS frontier being built.
    pub(crate) next_frontier: Vec<NodeId>,
    /// Chosen cluster ids (Cluster-GCN).
    pub(crate) chosen: Vec<u32>,
    /// Membership bitmap over global node ids (1 bit per graph node),
    /// rebuilt per induced assembly from the arena's node list. At ~12.5 KB
    /// per 100k nodes it stays L1-resident, so the hot membership scan
    /// rejects non-members without touching the 8-bytes-per-node dedup
    /// table.
    member: Vec<u64>,
    /// Per-column row hits of the induced-subgraph counting assembly, flat
    /// in ascending column order.
    hits: Vec<u32>,
    /// Hits per column (counting assembly).
    col_len: Vec<u32>,
    /// Per-row entry counts, then per-row write cursors (counting assembly).
    row_cursor: Vec<u32>,
    /// Batch-local copy of `inv_sqrt_degrees` (GCN counting assembly).
    factors: Vec<f32>,
    /// Batch-CSR arena: the storage every assembled batch *view* points
    /// into. One batch lives in it at a time; `to_owned` materializes
    /// whatever must outlive the next `sample_into` call.
    pub(crate) arena: BatchArena,
    allocs: u64,
    reuses: u64,
}

/// One assembled adjacency inside the [`BatchArena`]: which sub-ranges of
/// the arena's flat arrays make up this layer's CSR block and node list.
///
/// For layered (neighbor) batches the records are stored in **assembly
/// order** — output layer first — and `nodes` is the layer's *src* list;
/// the dst list is the previous record's `nodes` (the seed prefix for the
/// first record). That sharing is the point: the legacy path stored every
/// interior node list twice (once as a block's `src_nodes`, once as the
/// next block's `dst_nodes`).
#[derive(Clone, Debug)]
pub(crate) struct LayerRec {
    /// Src node range within `BatchArena::nodes` (and `degree`).
    pub(crate) nodes: Range<usize>,
    /// Number of adjacency rows (= dst count).
    pub(crate) rows: usize,
    /// Row-pointer range within `BatchArena::indptr` (`rows + 1` entries,
    /// values relative to this layer's `entries` start).
    pub(crate) indptr: Range<usize>,
    /// Entry range within `BatchArena::indices` (and `values`).
    pub(crate) entries: Range<usize>,
}

/// Arena backing one assembled batch: adjacency offsets and column indices
/// land as `u32` ranges directly from pick positions — no intermediate
/// edge-list `Vec`s, no per-batch COO→CSR pass, no `SparseMatrix::new`
/// revalidation walk. Fused normalization values and global degrees live in
/// sibling arrays over the same ranges. All buffers recycle their capacity
/// across batches (growth is charged to the owning scratch's alloc
/// counters), so steady-state assembly performs zero heap allocations.
#[derive(Debug, Default)]
pub(crate) struct BatchArena {
    /// Concatenated node-id ranges: the seed prefix, then one src range per
    /// assembled layer (subgraph batches: seeds are the prefix of the one
    /// node range).
    pub(crate) nodes: Vec<NodeId>,
    /// Global (full-graph) degree of each entry of `nodes`, same ranges.
    pub(crate) degree: Vec<f32>,
    /// Concatenated per-layer row pointers (layer-relative, compact `u32`).
    pub(crate) indptr: Vec<u32>,
    /// Concatenated per-layer column indices (batch-local ids).
    pub(crate) indices: Vec<u32>,
    /// Concatenated fused normalization values; empty under
    /// [`Normalization::None`].
    pub(crate) values: Vec<f32>,
    /// One record per assembled adjacency, in assembly order.
    pub(crate) layers: Vec<LayerRec>,
    /// Seed count of the resident batch.
    pub(crate) n_seeds: usize,
    /// Normalization fused into `values`.
    pub(crate) norm: Normalization,
}

impl BatchArena {
    /// Clears the arena for a fresh batch, retaining every capacity.
    pub(crate) fn begin(&mut self, n_seeds: usize, norm: Normalization) {
        self.nodes.clear();
        self.degree.clear();
        self.indptr.clear();
        self.indices.clear();
        self.values.clear();
        self.layers.clear();
        self.n_seeds = n_seeds;
        self.norm = norm;
    }

    /// Sum of buffer capacities — compared across a batch to charge arena
    /// growth to the scratch alloc counters exactly once per batch.
    pub(crate) fn caps(&self) -> usize {
        self.nodes.capacity()
            + self.degree.capacity()
            + self.indptr.capacity()
            + self.indices.capacity()
            + self.values.capacity()
            + self.layers.capacity()
    }

    /// Pre-sizes the flat arrays for a batch with at most `nodes` node-list
    /// entries, `indptr` row pointers and `entries` adjacency entries.
    pub(crate) fn reserve(&mut self, nodes: usize, indptr: usize, entries: usize, values: bool) {
        self.nodes.reserve(nodes);
        self.degree.reserve(nodes);
        self.indptr.reserve(indptr);
        self.indices.reserve(entries);
        if values {
            self.values.reserve(entries);
        }
    }

    /// Bytes of batch metadata resident in the arena for the current batch:
    /// node ids, degrees, row pointers, column indices and fused values —
    /// all 4-byte lanes. This is the *compact* footprint the `bytes_summary`
    /// accounting reports.
    pub(crate) fn metadata_bytes(&self) -> usize {
        4 * (self.nodes.len()
            + self.degree.len()
            + self.indptr.len()
            + self.indices.len()
            + self.values.len())
    }
}

/// Clears `buf` and resizes it to `len` zeroes, reporting whether capacity
/// grew.
fn prep<T: Copy + Default>(buf: &mut Vec<T>, len: usize) -> bool {
    let grew = buf.capacity() < len;
    buf.clear();
    buf.resize(len, T::default());
    grew
}

impl SamplerScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquisitions that had to grow a buffer (cold path).
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Acquisitions served entirely from recycled capacity.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    fn note(&mut self, grew: bool) {
        if grew {
            self.allocs += 1;
        } else {
            self.reuses += 1;
        }
    }

    /// Starts a dedup session over a graph with `num_nodes` nodes. All
    /// previous membership is forgotten in O(1).
    pub(crate) fn begin_dedup(&mut self, num_nodes: usize) {
        if self.stamp.len() < num_nodes {
            let grew = self.stamp.capacity() < num_nodes || self.slot.capacity() < num_nodes;
            self.stamp.resize(num_nodes, 0);
            self.slot.resize(num_nodes, 0);
            self.note(grew);
        } else {
            self.note(false);
        }
        if self.generation == u32::MAX {
            self.stamp.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
    }

    /// Inserts `v` with local index `slot` unless already present. Returns
    /// whether it was newly inserted.
    #[inline]
    pub(crate) fn dedup_insert(&mut self, v: NodeId, slot: u32) -> bool {
        let i = v as usize;
        if self.stamp[i] == self.generation {
            return false;
        }
        self.stamp[i] = self.generation;
        self.slot[i] = slot;
        true
    }

    /// Local index of `v` in the current dedup session, if present.
    #[inline]
    pub(crate) fn dedup_get(&self, v: NodeId) -> Option<u32> {
        let i = v as usize;
        (self.stamp[i] == self.generation).then(|| self.slot[i])
    }

    /// Ensures the pick buffers can hold `rows` rows / `picked` flat entries
    /// without growing. Called once per batch with a worst-case bound that
    /// depends only on the seed count, so realized per-layer row counts —
    /// which drift batch to batch under dedup — never grow a warm arena.
    pub(crate) fn warm_picks(&mut self, rows: usize, picked: usize) {
        let grew = self.picked.capacity() < picked || self.counts.capacity() < rows;
        self.note(grew);
        if grew {
            self.picked.reserve(picked);
            self.counts.reserve(rows);
        }
    }

    /// Acquires the flat pick buffer (`rows * fanout`) and the per-row count
    /// buffer for one layer's pick phase.
    pub(crate) fn acquire_picks(&mut self, rows: usize, fanout: usize) {
        let g1 = prep(&mut self.picked, rows * fanout);
        let g2 = prep(&mut self.counts, rows);
        self.note(g1 || g2);
    }

    /// Acquires the Floyd position buffer with room for `fanout` entries.
    pub(crate) fn acquire_positions(&mut self, fanout: usize) {
        let grew = self.positions.capacity() < fanout;
        self.positions.clear();
        self.note(grew);
        if grew {
            self.positions.reserve(fanout);
        }
    }

    /// Acquires both frontier buffers with room for `hint` nodes each.
    pub(crate) fn acquire_frontiers(&mut self, hint: usize) {
        let grew = self.frontier.capacity() < hint || self.next_frontier.capacity() < hint;
        self.frontier.clear();
        self.next_frontier.clear();
        self.note(grew);
        if grew {
            self.frontier.reserve(hint);
            self.next_frontier.reserve(hint);
        }
    }

    /// Acquires the chosen-cluster buffer with room for `hint` entries.
    pub(crate) fn acquire_chosen(&mut self, hint: usize) {
        let grew = self.chosen.capacity() < hint;
        self.chosen.clear();
        self.note(grew);
        if grew {
            self.chosen.reserve(hint);
        }
    }

    /// Records buffer growth observed outside an `acquire_*` call (e.g. a
    /// BFS frontier that outgrew its hint while being pushed to).
    pub(crate) fn note_growth(&mut self, grew: bool) {
        self.note(grew);
    }

    /// Acquires the counting-assembly buffers: per-row counters and
    /// per-column lengths for `rows` rows/columns, and (GCN only) the local
    /// normalization factor table. The hit list is cleared but not
    /// pre-sized — its exact length is only known after the membership scan,
    /// so growth is noted by the scan itself (`note_growth`).
    pub(crate) fn acquire_induced(&mut self, rows: usize, gcn: bool) {
        self.hits.clear();
        let g2 = self.col_len.capacity() < rows;
        self.col_len.clear();
        if g2 {
            self.col_len.reserve(rows);
        }
        let g3 = prep(&mut self.row_cursor, rows);
        let g4 = gcn && {
            let grew = self.factors.capacity() < rows;
            self.factors.clear();
            if grew {
                self.factors.reserve(rows);
            }
            grew
        };
        self.note(g2 || g3 || g4);
    }
}

/// Robert Floyd's algorithm: a uniform sample of `fanout` *distinct*
/// positions in `0..deg` (`deg > fanout`), left sorted in `positions`.
///
/// For `j` in `deg-fanout..deg`, draw `t` in `0..=j`; on a collision insert
/// `j` instead. `j` strictly exceeds every entry already present, so the
/// collision case appends at the end and fresh draws binary-search to their
/// slot — O(fanout log fanout), no degree-sized copy, no hash set.
pub(crate) fn floyd_positions(
    rng: &mut StreamRng,
    deg: usize,
    fanout: usize,
    positions: &mut Vec<u32>,
) {
    positions.clear();
    for j in (deg - fanout)..deg {
        let t = rng.index(j + 1) as u32;
        match positions.binary_search(&t) {
            Ok(_) => positions.push(j as u32),
            Err(at) => positions.insert(at, t),
        }
    }
}

/// Arena twin of the legacy [`crate::legacy::induced_batch`]: assembles the
/// induced, relabeled CSR over `arena.nodes` **in place**, using the
/// scratch's *current* dedup session as the relabel map (every entry of
/// `arena.nodes` must be registered in it) and writing fused normalization
/// values during row assembly. The adjacency lands as one `LayerRec` over
/// the arena's flat `u32` arrays — no per-batch `Vec`s, no
/// `SparseMatrix::new` revalidation. Output is bitwise-identical to the
/// legacy path (pinned by proptest).
pub(crate) fn arena_induced(
    graph: &Graph,
    arena: &mut BatchArena,
    scratch: &mut SamplerScratch,
    norm: Normalization,
) {
    debug_assert!(arena.indptr.is_empty() && arena.indices.is_empty());
    let n = arena.nodes.len();
    if graph.is_symmetric() {
        induced_counting(graph, arena, scratch, norm);
    } else {
        induced_sorting(graph, arena, scratch, norm);
    }
    for idx in 0..n {
        let d = graph.degree(arena.nodes[idx]) as f32;
        arena.degree.push(d);
    }
    arena.layers.push(LayerRec {
        nodes: 0..n,
        rows: n,
        indptr: 0..n + 1,
        entries: 0..arena.indices.len(),
    });
}

/// Sort-free induced assembly for symmetric adjacencies (the common case:
/// every generator and undirected loader builds both edge directions).
///
/// Scanning columns in ascending *local* order and bucketing each hit
/// `(row i, column j)` lets the scatter pass fill every row left-to-right
/// with already-ascending column ids — the per-row `sort_unstable` of the
/// general path (≈half the assembly time on power-law batches) disappears.
/// On a symmetric graph `nodes[i] ∈ N(nodes[j]) ⇔ nodes[j] ∈ N(nodes[i])`
/// with equal multiplicity, so the transposed scan enumerates exactly the
/// entry set the row-major legacy scan does, and the output — including the
/// fused normalization values, written with the same row-factor-first
/// operand order — stays bitwise-identical (pinned by proptest).
fn induced_counting(
    graph: &Graph,
    arena: &mut BatchArena,
    scratch: &mut SamplerScratch,
    norm: Normalization,
) {
    let n = arena.nodes.len();
    scratch.acquire_induced(n, norm == Normalization::Gcn);
    arena.reserve(0, n + 1, 0, false);
    // Membership bitmap over global ids: every arena node is registered in
    // the current dedup session, so `bit set ⇒ table entry is current` and
    // the scan below needs neither a generation check nor a table touch for
    // the (roughly half) non-member endpoints.
    let words = graph.num_nodes().div_ceil(64);
    let grew_bitmap = prep(&mut scratch.member, words);
    scratch.note_growth(grew_bitmap);
    for &v in &arena.nodes {
        scratch.member[(v >> 6) as usize] |= 1u64 << (v & 63);
    }
    // Pass 1: one membership scan over the nodes' adjacencies, in ascending
    // local-column order, pushing *global* ids — the L1 bitmap is the only
    // probe, so the scan touches the big dedup table zero times. Symmetry
    // pays twice here: each node's induced row count equals its
    // member-neighbor count, so the column lengths double as the row counts
    // and no per-hit counter update is needed either.
    let hits_cap = scratch.hits.capacity();
    {
        let member = &scratch.member;
        let hits = &mut scratch.hits;
        let col_len = &mut scratch.col_len;
        for j in 0..n {
            let before = hits.len();
            for &u in graph.neighbors(arena.nodes[j]) {
                if member[(u >> 6) as usize] >> (u & 63) & 1 != 0 {
                    hits.push(u);
                }
            }
            col_len.push((hits.len() - before) as u32);
        }
    }
    scratch.note_growth(scratch.hits.capacity() > hits_cap);
    // Row pointers: exclusive prefix sum of the row (= column) counts.
    // `row_cursor` becomes each row's next write offset for the scatter.
    arena.indptr.push(0);
    let mut acc = 0u32;
    for i in 0..n {
        let c = scratch.col_len[i];
        scratch.row_cursor[i] = acc;
        acc += c;
        arena.indptr.push(acc);
    }
    let nnz = acc as usize;
    arena.indices.resize(nnz, 0);
    match norm {
        Normalization::None => {}
        Normalization::Mean => {
            // Mean values depend only on row occupancy — fill sequentially.
            arena.values.reserve(nnz);
            for i in 0..n {
                let cnt = (arena.indptr[i + 1] - arena.indptr[i]) as usize;
                let inv = 1.0 / (cnt.max(1)) as f32;
                for _ in 0..cnt {
                    arena.values.push(inv);
                }
            }
        }
        Normalization::Gcn => {
            let inv_sqrt = graph.inv_sqrt_degrees();
            for idx in 0..n {
                scratch.factors.push(inv_sqrt[arena.nodes[idx] as usize]);
            }
            arena.values.resize(nnz, 0.0);
        }
    }
    // Pass 2: translate each hit's global id to its local row through the
    // dedup table (every member is registered in the current session, so no
    // generation check is needed) and scatter; ascending `j` means every
    // row fills in sorted order with no comparison sort anywhere. This is
    // the only table traffic of the whole assembly, and it overlaps with
    // the scatter's own write misses instead of serializing a second
    // random-access pass.
    {
        let slot = &scratch.slot;
        let hits = &scratch.hits;
        let col_len = &scratch.col_len;
        let row_cursor = &mut scratch.row_cursor;
        let mut h = 0usize;
        for (j, &cnt) in col_len[..n].iter().enumerate() {
            let cnt = cnt as usize;
            for &u in &hits[h..h + cnt] {
                let i = slot[u as usize] as usize;
                let k = row_cursor[i] as usize;
                row_cursor[i] = k as u32 + 1;
                arena.indices[k] = j as u32;
            }
            h += cnt;
        }
    }
    if norm == Normalization::Gcn {
        // Values in one sequential sweep over the finished rows: the column
        // array streams and the batch-local factor table is L1-resident, so
        // no value ever rides the random scatter above. Row factor first —
        // the legacy operand order.
        let factors = &scratch.factors;
        for i in 0..n {
            let fi = factors[i];
            let lo = arena.indptr[i] as usize;
            let hi = arena.indptr[i + 1] as usize;
            for k in lo..hi {
                let j = arena.indices[k] as usize;
                arena.values[k] = fi * factors[j];
            }
        }
    }
}

/// General induced assembly: row-major membership scan with a per-row sort
/// (local ids follow discovery order while the graph's adjacency is sorted
/// by global id). Fallback for asymmetric adjacencies, where the transposed
/// counting scan would enumerate the wrong entry set.
fn induced_sorting(
    graph: &Graph,
    arena: &mut BatchArena,
    scratch: &SamplerScratch,
    norm: Normalization,
) {
    let inv_sqrt: &[f32] = if norm == Normalization::Gcn {
        graph.inv_sqrt_degrees()
    } else {
        &[]
    };
    let n = arena.nodes.len();
    // Exact upper bound on induced entries: the sum of the nodes' global
    // degrees. One O(n) pass that pins the entry arrays' capacity, so a
    // warm arena never reallocates mid-assembly.
    let mut bound = 0usize;
    for idx in 0..n {
        bound += graph.neighbors(arena.nodes[idx]).len();
    }
    arena.reserve(0, n + 1, bound, norm != Normalization::None);
    arena.indptr.push(0);
    for idx in 0..n {
        let v = arena.nodes[idx];
        let start = arena.indices.len();
        for &u in graph.neighbors(v) {
            if let Some(j) = scratch.dedup_get(u) {
                arena.indices.push(j);
            }
        }
        arena.indices[start..].sort_unstable();
        if norm != Normalization::None {
            let cnt = arena.indices.len() - start;
            if norm == Normalization::Mean {
                let inv = 1.0 / (cnt.max(1)) as f32;
                for _ in 0..cnt {
                    arena.values.push(inv);
                }
            } else {
                let dv = inv_sqrt[v as usize];
                for k in start..arena.indices.len() {
                    let j = arena.indices[k] as usize;
                    arena.values.push(dv * inv_sqrt[arena.nodes[j] as usize]);
                }
            }
        }
        arena.indptr.push(arena.indices.len() as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_session_isolates_generations() {
        let mut s = SamplerScratch::new();
        s.begin_dedup(8);
        assert!(s.dedup_insert(3, 0));
        assert!(!s.dedup_insert(3, 1));
        assert_eq!(s.dedup_get(3), Some(0));
        assert_eq!(s.dedup_get(4), None);
        s.begin_dedup(8);
        assert_eq!(s.dedup_get(3), None, "new session forgets old members");
        assert!(s.dedup_insert(3, 7));
        assert_eq!(s.dedup_get(3), Some(7));
    }

    #[test]
    fn generation_wraparound_resets_table() {
        let mut s = SamplerScratch::new();
        s.begin_dedup(4);
        s.dedup_insert(1, 0);
        s.generation = u32::MAX; // fast-forward to the wraparound edge
        s.begin_dedup(4);
        assert_eq!(s.generation, 1);
        assert_eq!(s.dedup_get(1), None, "stale stamps must not alias");
    }

    #[test]
    fn buffers_alloc_once_then_recycle() {
        let mut s = SamplerScratch::new();
        s.acquire_picks(64, 10);
        s.acquire_positions(10);
        assert!(s.allocs() > 0);
        let after_first = s.allocs();
        for _ in 0..5 {
            s.acquire_picks(64, 10);
            s.acquire_picks(16, 5); // smaller shapes reuse the same capacity
            s.acquire_positions(10);
        }
        assert_eq!(s.allocs(), after_first, "steady state must not allocate");
        assert!(s.reuses() > 0);
    }
}
