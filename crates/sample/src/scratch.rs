//! Reusable per-worker sampler scratch state.
//!
//! Mirrors the tensor crate's workspace arena: every sampler obtains its
//! bookkeeping buffers — the dense dedup table, the per-row pick buffers,
//! Floyd position sets, BFS frontiers — from a [`SamplerScratch`] owned by
//! the calling worker, so the steady-state sampling loop performs **zero
//! per-batch heap allocations for sampler metadata**. (The returned batch
//! itself owns fresh memory, of course: it is payload handed across the
//! pipeline, not bookkeeping.)
//!
//! The dedup table is *epoch-stamped*: membership of node `v` is
//! `stamp[v] == generation`, so clearing between dedup sessions is a single
//! generation bump instead of an O(num_nodes) wipe or a `HashMap` rebuild.
//! The table resets itself on the (once per ~4 billion sessions) generation
//! wraparound.
//!
//! Growth is tracked by the same two counters the tensor workspace exposes:
//! an acquisition that must grow a buffer's capacity counts as an alloc,
//! one served from existing capacity counts as a reuse. The loader's
//! recycle test pins allocs to the first batch only.

use argo_graph::{Graph, NodeId};
use argo_rt::StreamRng;
use argo_tensor::SparseMatrix;

use crate::batch::{Normalization, SubgraphBatch};

/// Scratch buffers recycled across [`Sampler::sample_with`](crate::Sampler)
/// calls.
#[derive(Debug, Default)]
pub struct SamplerScratch {
    /// Dense dedup table: `stamp[v] == generation` means `v` is present.
    stamp: Vec<u32>,
    /// Local (relabeled) index of `v`, valid only when stamped.
    slot: Vec<u32>,
    generation: u32,
    /// Flat per-row neighbor picks, stride `fanout`.
    pub(crate) picked: Vec<NodeId>,
    /// Number of valid picks per row.
    pub(crate) counts: Vec<u32>,
    /// Floyd sample of distinct in-row positions (serial pick path).
    pub(crate) positions: Vec<u32>,
    /// Current BFS frontier (ShaDow) / walk roots.
    pub(crate) frontier: Vec<NodeId>,
    /// Next BFS frontier being built.
    pub(crate) next_frontier: Vec<NodeId>,
    /// Chosen cluster ids (Cluster-GCN).
    pub(crate) chosen: Vec<u32>,
    allocs: u64,
    reuses: u64,
}

/// Clears `buf` and resizes it to `len`, reporting whether capacity grew.
fn prep(buf: &mut Vec<u32>, len: usize) -> bool {
    let grew = buf.capacity() < len;
    buf.clear();
    buf.resize(len, 0);
    grew
}

impl SamplerScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquisitions that had to grow a buffer (cold path).
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Acquisitions served entirely from recycled capacity.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    fn note(&mut self, grew: bool) {
        if grew {
            self.allocs += 1;
        } else {
            self.reuses += 1;
        }
    }

    /// Starts a dedup session over a graph with `num_nodes` nodes. All
    /// previous membership is forgotten in O(1).
    pub(crate) fn begin_dedup(&mut self, num_nodes: usize) {
        if self.stamp.len() < num_nodes {
            let grew = self.stamp.capacity() < num_nodes || self.slot.capacity() < num_nodes;
            self.stamp.resize(num_nodes, 0);
            self.slot.resize(num_nodes, 0);
            self.note(grew);
        } else {
            self.note(false);
        }
        if self.generation == u32::MAX {
            self.stamp.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
    }

    /// Inserts `v` with local index `slot` unless already present. Returns
    /// whether it was newly inserted.
    #[inline]
    pub(crate) fn dedup_insert(&mut self, v: NodeId, slot: u32) -> bool {
        let i = v as usize;
        if self.stamp[i] == self.generation {
            return false;
        }
        self.stamp[i] = self.generation;
        self.slot[i] = slot;
        true
    }

    /// Local index of `v` in the current dedup session, if present.
    #[inline]
    pub(crate) fn dedup_get(&self, v: NodeId) -> Option<u32> {
        let i = v as usize;
        (self.stamp[i] == self.generation).then(|| self.slot[i])
    }

    /// Ensures the pick buffers can hold `rows` rows / `picked` flat entries
    /// without growing. Called once per batch with a worst-case bound that
    /// depends only on the seed count, so realized per-layer row counts —
    /// which drift batch to batch under dedup — never grow a warm arena.
    pub(crate) fn warm_picks(&mut self, rows: usize, picked: usize) {
        let grew = self.picked.capacity() < picked || self.counts.capacity() < rows;
        self.note(grew);
        if grew {
            self.picked.reserve(picked);
            self.counts.reserve(rows);
        }
    }

    /// Acquires the flat pick buffer (`rows * fanout`) and the per-row count
    /// buffer for one layer's pick phase.
    pub(crate) fn acquire_picks(&mut self, rows: usize, fanout: usize) {
        let g1 = prep(&mut self.picked, rows * fanout);
        let g2 = prep(&mut self.counts, rows);
        self.note(g1 || g2);
    }

    /// Acquires the Floyd position buffer with room for `fanout` entries.
    pub(crate) fn acquire_positions(&mut self, fanout: usize) {
        let grew = self.positions.capacity() < fanout;
        self.positions.clear();
        self.note(grew);
        if grew {
            self.positions.reserve(fanout);
        }
    }

    /// Acquires both frontier buffers with room for `hint` nodes each.
    pub(crate) fn acquire_frontiers(&mut self, hint: usize) {
        let grew = self.frontier.capacity() < hint || self.next_frontier.capacity() < hint;
        self.frontier.clear();
        self.next_frontier.clear();
        self.note(grew);
        if grew {
            self.frontier.reserve(hint);
            self.next_frontier.reserve(hint);
        }
    }

    /// Acquires the chosen-cluster buffer with room for `hint` entries.
    pub(crate) fn acquire_chosen(&mut self, hint: usize) {
        let grew = self.chosen.capacity() < hint;
        self.chosen.clear();
        self.note(grew);
        if grew {
            self.chosen.reserve(hint);
        }
    }

    /// Records buffer growth observed outside an `acquire_*` call (e.g. a
    /// BFS frontier that outgrew its hint while being pushed to).
    pub(crate) fn note_growth(&mut self, grew: bool) {
        self.note(grew);
    }
}

/// Robert Floyd's algorithm: a uniform sample of `fanout` *distinct*
/// positions in `0..deg` (`deg > fanout`), left sorted in `positions`.
///
/// For `j` in `deg-fanout..deg`, draw `t` in `0..=j`; on a collision insert
/// `j` instead. `j` strictly exceeds every entry already present, so the
/// collision case appends at the end and fresh draws binary-search to their
/// slot — O(fanout log fanout), no degree-sized copy, no hash set.
pub(crate) fn floyd_positions(
    rng: &mut StreamRng,
    deg: usize,
    fanout: usize,
    positions: &mut Vec<u32>,
) {
    positions.clear();
    for j in (deg - fanout)..deg {
        let t = rng.index(j + 1) as u32;
        match positions.binary_search(&t) {
            Ok(_) => positions.push(j as u32),
            Err(at) => positions.insert(at, t),
        }
    }
}

/// Builds the induced, relabeled [`SubgraphBatch`] over `nodes`, using the
/// scratch's *current* dedup session as the relabel map (every entry of
/// `nodes` must be registered in it) and writing fused normalization values
/// during row assembly instead of a second pass over the finished batch.
pub(crate) fn induced_batch(
    graph: &Graph,
    nodes: Vec<NodeId>,
    seed_positions: Vec<usize>,
    seeds: Vec<NodeId>,
    scratch: &SamplerScratch,
    norm: Normalization,
) -> SubgraphBatch {
    let inv_sqrt: &[f32] = if norm == Normalization::Gcn {
        graph.inv_sqrt_degrees()
    } else {
        &[]
    };
    let n = nodes.len();
    let mut indptr = Vec::with_capacity(n + 1);
    indptr.push(0usize);
    let mut indices: Vec<u32> = Vec::new();
    let mut values: Option<Vec<f32>> = (norm != Normalization::None).then(Vec::new);
    for &v in &nodes {
        let start = indices.len();
        for &u in graph.neighbors(v) {
            if let Some(j) = scratch.dedup_get(u) {
                indices.push(j);
            }
        }
        // The graph's adjacency is sorted by *global* id; local ids follow
        // discovery order, so re-sort the row segment in place.
        indices[start..].sort_unstable();
        if let Some(vals) = &mut values {
            let cnt = indices.len() - start;
            if norm == Normalization::Mean {
                let inv = 1.0 / (cnt.max(1)) as f32;
                for _ in 0..cnt {
                    vals.push(inv);
                }
            } else {
                let dv = inv_sqrt[v as usize];
                for &j in &indices[start..] {
                    vals.push(dv * inv_sqrt[nodes[j as usize] as usize]);
                }
            }
        }
        indptr.push(indices.len());
    }
    let adj = SparseMatrix::new(n, n, indptr, indices, values);
    let degree = nodes.iter().map(|&v| graph.degree(v) as f32).collect();
    SubgraphBatch {
        nodes,
        adj,
        seed_positions,
        seeds,
        degree,
        norm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_session_isolates_generations() {
        let mut s = SamplerScratch::new();
        s.begin_dedup(8);
        assert!(s.dedup_insert(3, 0));
        assert!(!s.dedup_insert(3, 1));
        assert_eq!(s.dedup_get(3), Some(0));
        assert_eq!(s.dedup_get(4), None);
        s.begin_dedup(8);
        assert_eq!(s.dedup_get(3), None, "new session forgets old members");
        assert!(s.dedup_insert(3, 7));
        assert_eq!(s.dedup_get(3), Some(7));
    }

    #[test]
    fn generation_wraparound_resets_table() {
        let mut s = SamplerScratch::new();
        s.begin_dedup(4);
        s.dedup_insert(1, 0);
        s.generation = u32::MAX; // fast-forward to the wraparound edge
        s.begin_dedup(4);
        assert_eq!(s.generation, 1);
        assert_eq!(s.dedup_get(1), None, "stale stamps must not alias");
    }

    #[test]
    fn buffers_alloc_once_then_recycle() {
        let mut s = SamplerScratch::new();
        s.acquire_picks(64, 10);
        s.acquire_positions(10);
        assert!(s.allocs() > 0);
        let after_first = s.allocs();
        for _ in 0..5 {
            s.acquire_picks(64, 10);
            s.acquire_picks(16, 5); // smaller shapes reuse the same capacity
            s.acquire_positions(10);
        }
        assert_eq!(s.allocs(), after_first, "steady state must not allocate");
        assert!(s.reuses() > 0);
    }
}
