//! Layer-wise neighbor sampling (Hamilton et al. 2017; paper Section II-B).

use argo_graph::{Graph, NodeId};
use argo_tensor::SparseMatrix;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::batch::{Block, MiniBatch, SampledBatch};
use crate::Sampler;

/// Neighbor sampler with per-layer fanouts, ordered input layer → output
/// layer (the paper uses `[15, 10, 5]`: the layer nearest the input samples
/// 15 neighbors per node).
#[derive(Clone, Debug)]
pub struct NeighborSampler {
    fanouts: Vec<usize>,
}

impl NeighborSampler {
    /// Creates a sampler; `fanouts` must be non-empty with positive entries.
    pub fn new(fanouts: Vec<usize>) -> Self {
        assert!(!fanouts.is_empty() && fanouts.iter().all(|&f| f > 0));
        Self { fanouts }
    }

    /// The paper's standard 3-layer configuration `[15, 10, 5]`.
    pub fn paper_default() -> Self {
        Self::new(vec![15, 10, 5])
    }

    /// The configured fanouts.
    pub fn fanouts(&self) -> &[usize] {
        &self.fanouts
    }
}

/// Samples up to `fanout` distinct neighbors of `v` without replacement
/// (partial Fisher–Yates over a scratch copy when the neighborhood is
/// larger than the fanout).
fn sample_neighbors(
    graph: &Graph,
    v: NodeId,
    fanout: usize,
    rng: &mut SmallRng,
    scratch: &mut Vec<NodeId>,
    out: &mut Vec<NodeId>,
) {
    let neigh = graph.neighbors(v);
    if neigh.len() <= fanout {
        out.extend_from_slice(neigh);
        return;
    }
    scratch.clear();
    scratch.extend_from_slice(neigh);
    for i in 0..fanout {
        let j = rng.gen_range(i..scratch.len());
        scratch.swap(i, j);
        out.push(scratch[i]);
    }
}

impl Sampler for NeighborSampler {
    fn sample(&self, graph: &Graph, seeds: &[NodeId], rng: &mut SmallRng) -> SampledBatch {
        let num_layers = self.fanouts.len();
        let mut blocks_rev: Vec<Block> = Vec::with_capacity(num_layers);
        let mut dst: Vec<NodeId> = seeds.to_vec();
        let mut scratch: Vec<NodeId> = Vec::new();
        // Build from the output layer inward (fanouts accessed in reverse).
        for layer in (0..num_layers).rev() {
            let fanout = self.fanouts[layer];
            // src starts with a copy of dst so layers can self-reference.
            let mut src: Vec<NodeId> = dst.clone();
            let mut local: std::collections::HashMap<NodeId, u32> =
                std::collections::HashMap::with_capacity(dst.len() * (fanout + 1));
            for (i, &v) in dst.iter().enumerate() {
                local.insert(v, i as u32);
            }
            let mut indptr = Vec::with_capacity(dst.len() + 1);
            indptr.push(0usize);
            let mut indices: Vec<u32> = Vec::with_capacity(dst.len() * fanout);
            let mut picked: Vec<NodeId> = Vec::with_capacity(fanout);
            for &v in dst.iter() {
                picked.clear();
                sample_neighbors(graph, v, fanout, rng, &mut scratch, &mut picked);
                for &u in &picked {
                    let idx = *local.entry(u).or_insert_with(|| {
                        src.push(u);
                        (src.len() - 1) as u32
                    });
                    indices.push(idx);
                }
                indptr.push(indices.len());
            }
            let adj = SparseMatrix::new(dst.len(), src.len(), indptr, indices, None);
            let dst_degree = dst.iter().map(|&v| graph.degree(v) as f32).collect();
            let src_degree = src.iter().map(|&v| graph.degree(v) as f32).collect();
            blocks_rev.push(Block {
                src_nodes: src.clone(),
                dst_nodes: std::mem::take(&mut dst),
                adj,
                dst_degree,
                src_degree,
            });
            dst = src;
        }
        blocks_rev.reverse();
        SampledBatch::Blocks(MiniBatch {
            seeds: seeds.to_vec(),
            blocks: blocks_rev,
        })
    }

    fn name(&self) -> &'static str {
        "Neighbor"
    }

    fn num_layers(&self) -> usize {
        self.fanouts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_graph::generators::power_law;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    fn minibatch(batch: SampledBatch) -> MiniBatch {
        match batch {
            SampledBatch::Blocks(mb) => mb,
            _ => panic!("expected blocks"),
        }
    }

    #[test]
    fn respects_fanout_bounds() {
        let g = power_law(500, 4000, 0.8, 1);
        let s = NeighborSampler::new(vec![4, 2]);
        let mb = minibatch(s.sample(&g, &[0, 1, 2, 3], &mut rng(5)));
        assert_eq!(mb.blocks.len(), 2);
        // Output block: dst == seeds, fanout 2 (layer index 1).
        let out = &mb.blocks[1];
        assert_eq!(out.dst_nodes, vec![0, 1, 2, 3]);
        for i in 0..out.adj.rows() {
            let deg = out.adj.indptr()[i + 1] - out.adj.indptr()[i];
            assert!(deg <= 2, "fanout violated: {deg}");
        }
        // Input block fanout 4.
        let inp = &mb.blocks[0];
        for i in 0..inp.adj.rows() {
            let deg = inp.adj.indptr()[i + 1] - inp.adj.indptr()[i];
            assert!(deg <= 4);
        }
    }

    #[test]
    fn sampled_edges_exist_in_graph() {
        let g = power_law(300, 3000, 0.8, 2);
        let s = NeighborSampler::new(vec![5, 3]);
        let mb = minibatch(s.sample(&g, &[10, 20, 30], &mut rng(9)));
        for b in &mb.blocks {
            for i in 0..b.adj.rows() {
                let v = b.dst_nodes[i];
                for k in b.adj.indptr()[i]..b.adj.indptr()[i + 1] {
                    let u = b.src_nodes[b.adj.indices()[k] as usize];
                    assert!(g.has_edge(v, u), "edge {v}->{u} not in graph");
                }
            }
        }
    }

    #[test]
    fn src_prefix_is_dst() {
        let g = power_law(300, 3000, 0.8, 3);
        let s = NeighborSampler::paper_default();
        let mb = minibatch(s.sample(&g, &[1, 2], &mut rng(4)));
        for b in &mb.blocks {
            assert_eq!(&b.src_nodes[..b.dst_nodes.len()], &b.dst_nodes[..]);
        }
    }

    #[test]
    fn layers_chain() {
        let g = power_law(300, 3000, 0.8, 4);
        let s = NeighborSampler::new(vec![3, 3, 3]);
        let mb = minibatch(s.sample(&g, &[5, 6], &mut rng(7)));
        assert_eq!(mb.blocks.len(), 3);
        // src of layer l+1's perspective: dst of block l+1 equals src of... in
        // our ordering blocks[l].dst == blocks[l+1].src? No: forward order —
        // blocks[l] consumes blocks[l]'s src and produces dst which feeds
        // blocks[l+1] as src.
        for l in 0..2 {
            assert_eq!(mb.blocks[l].dst_nodes, mb.blocks[l + 1].src_nodes);
        }
        assert_eq!(mb.blocks[2].dst_nodes, mb.seeds);
    }

    #[test]
    fn no_duplicate_src_nodes() {
        let g = power_law(400, 4000, 0.8, 5);
        let s = NeighborSampler::paper_default();
        let mb = minibatch(s.sample(&g, &[0, 1, 2, 3, 4], &mut rng(11)));
        for b in &mb.blocks {
            let mut ids = b.src_nodes.clone();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), before, "duplicate src node");
        }
    }

    #[test]
    fn no_replacement_within_a_row() {
        let g = power_law(400, 8000, 0.7, 6);
        let s = NeighborSampler::new(vec![10]);
        let mb = minibatch(s.sample(&g, &(0..50).collect::<Vec<_>>(), &mut rng(13)));
        let b = &mb.blocks[0];
        for i in 0..b.adj.rows() {
            let row = &b.adj.indices()[b.adj.indptr()[i]..b.adj.indptr()[i + 1]];
            // Distinct local indices; note parallel edges in the graph mean a
            // neighbor *can* repeat as often as its multiplicity, but our
            // Fisher-Yates picks distinct positions, so duplicates only occur
            // for parallel edges. Check there is no excess.
            let mut sorted = row.to_vec();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                if w[0] == w[1] {
                    // allowed only when the underlying multi-edge exists
                    let v = b.dst_nodes[i];
                    let u = b.src_nodes[w[0] as usize];
                    let mult = g.neighbors(v).iter().filter(|&&x| x == u).count();
                    assert!(mult >= 2, "non-multi-edge duplicated");
                }
            }
        }
    }

    #[test]
    fn deterministic_in_rng() {
        let g = power_law(200, 2000, 0.8, 7);
        let s = NeighborSampler::new(vec![4, 4]);
        let a = minibatch(s.sample(&g, &[1, 2, 3], &mut rng(21)));
        let b = minibatch(s.sample(&g, &[1, 2, 3], &mut rng(21)));
        for (x, y) in a.blocks.iter().zip(&b.blocks) {
            assert_eq!(x.src_nodes, y.src_nodes);
            assert_eq!(x.adj.indices(), y.adj.indices());
        }
    }

    #[test]
    fn isolated_seed_has_empty_rows() {
        // Node 3 isolated (no edges mention it).
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)], true);
        let s = NeighborSampler::new(vec![3]);
        let mb = minibatch(s.sample(&g, &[3], &mut rng(1)));
        assert_eq!(mb.blocks[0].adj.nnz(), 0);
        assert_eq!(mb.input_nodes(), &[3]);
    }
}
