//! Layer-wise neighbor sampling (Hamilton et al. 2017; paper Section II-B).

use argo_graph::{Graph, NodeId};
use argo_rt::{racecheck, SeedSequence, StreamRng, ThreadPool};

use crate::batch::Normalization;
use crate::scratch::{LayerRec, SamplerScratch};
use crate::view::SampledBatchView;
use crate::{SampleRun, Sampler};

/// Neighbor sampler with per-layer fanouts, ordered input layer → output
/// layer (the paper uses `[15, 10, 5]`: the layer nearest the input samples
/// 15 neighbors per node).
#[derive(Clone, Debug)]
pub struct NeighborSampler {
    fanouts: Vec<usize>,
}

impl NeighborSampler {
    /// Creates a sampler; `fanouts` must be non-empty with positive entries.
    pub fn new(fanouts: Vec<usize>) -> Self {
        assert!(!fanouts.is_empty() && fanouts.iter().all(|&f| f > 0));
        Self { fanouts }
    }

    /// The paper's standard 3-layer configuration `[15, 10, 5]`.
    pub fn paper_default() -> Self {
        Self::new(vec![15, 10, 5])
    }

    /// The configured fanouts.
    pub fn fanouts(&self) -> &[usize] {
        &self.fanouts
    }
}

/// Picks up to `fanout` neighbors of `v` into `out` (length ≥ `fanout`),
/// returning the pick count.
///
/// When the row is no larger than the fanout the whole row is copied. When
/// it is larger, Robert Floyd's algorithm samples `fanout` *distinct
/// positions* in `0..deg` — uniform without replacement, O(fanout log
/// fanout), and crucially no degree-sized copy of the adjacency row: a hub
/// node with thousands of neighbors costs the same as any other row.
/// Distinct positions preserve the multi-edge semantics of the old partial
/// Fisher–Yates (a neighbor repeats only as often as its multiplicity).
fn pick_row(
    graph: &Graph,
    v: NodeId,
    fanout: usize,
    mut rng: StreamRng,
    out: &mut [NodeId],
    positions: &mut Vec<u32>,
) -> u32 {
    let neigh = graph.neighbors(v);
    let deg = neigh.len();
    if deg <= fanout {
        out[..deg].copy_from_slice(neigh);
        return deg as u32;
    }
    crate::scratch::floyd_positions(&mut rng, deg, fanout, positions);
    for (k, &p) in positions.iter().enumerate() {
        out[k] = neigh[p as usize];
    }
    fanout as u32
}

/// Pick phase for one layer: fills `scratch.picked` (stride `fanout`) and
/// `scratch.counts` for every row of `dst`. Each row draws from its own
/// counter-based stream keyed by `(layer, row)`, so the picks are a pure
/// function of the row's logical coordinate — the pool path partitions rows
/// across workers and produces bitwise-identical buffers to the serial path.
pub(crate) fn pick_layer(
    graph: &Graph,
    dst: &[NodeId],
    fanout: usize,
    stream: SeedSequence,
    layer: u64,
    scratch: &mut SamplerScratch,
    pool: Option<&ThreadPool>,
) {
    let rows = dst.len();
    scratch.acquire_picks(rows, fanout);
    match pool {
        Some(pool) if pool.size() > 1 && rows >= 2 => {
            // Workers write disjoint row windows of the two buffers; share
            // the base pointers as plain addresses (same idiom as
            // `ThreadPool::parallel_chunks_mut`).
            let picked_addr = scratch.picked.as_mut_ptr() as usize;
            let counts_addr = scratch.counts.as_mut_ptr() as usize;
            // Shadow cells are row-granular: one per destination row.
            let picked_shadow = racecheck::region("sample.pick_layer.picked", rows);
            let counts_shadow = racecheck::region("sample.pick_layer.counts", rows);
            pool.parallel_ranges(rows, |range| {
                racecheck::write(&picked_shadow, range.start, range.len());
                racecheck::write(&counts_shadow, range.start, range.len());
                // SAFETY: `parallel_ranges` hands out disjoint row ranges
                // and both buffers were sized for `rows` rows above, so each
                // worker touches a private, in-bounds window; the buffers
                // outlive the call because `parallel_ranges` blocks.
                let picked = unsafe {
                    std::slice::from_raw_parts_mut(
                        (picked_addr as *mut NodeId).add(range.start * fanout),
                        range.len() * fanout,
                    )
                };
                // SAFETY: as above — disjoint per-worker window of `counts`.
                let counts = unsafe {
                    std::slice::from_raw_parts_mut(
                        (counts_addr as *mut u32).add(range.start),
                        range.len(),
                    )
                };
                let mut positions = Vec::with_capacity(fanout);
                for (k, i) in range.enumerate() {
                    let rng = StreamRng::new(stream.seed_for(layer, i as u64));
                    counts[k] = pick_row(
                        graph,
                        dst[i],
                        fanout,
                        rng,
                        &mut picked[k * fanout..(k + 1) * fanout],
                        &mut positions,
                    );
                }
            });
        }
        _ => {
            scratch.acquire_positions(fanout);
            let picked = &mut scratch.picked;
            let counts = &mut scratch.counts;
            let positions = &mut scratch.positions;
            for (i, &v) in dst.iter().enumerate() {
                let rng = StreamRng::new(stream.seed_for(layer, i as u64));
                counts[i] = pick_row(
                    graph,
                    v,
                    fanout,
                    rng,
                    &mut picked[i * fanout..(i + 1) * fanout],
                    positions,
                );
            }
        }
    }
}

impl Sampler for NeighborSampler {
    fn sample_into<'a>(
        &self,
        graph: &Graph,
        seeds: &[NodeId],
        run: SampleRun<'a>,
    ) -> SampledBatchView<'a> {
        let SampleRun {
            stream,
            norm,
            scratch,
            pool,
        } = run;
        let num_layers = self.fanouts.len();
        let inv_sqrt: &[f32] = if norm == Normalization::Gcn {
            graph.inv_sqrt_degrees()
        } else {
            &[]
        };
        // Warm every buffer to its worst case up front. Realized per-layer
        // row counts drift batch to batch (dedup), but these bounds depend
        // only on the seed count, the fanouts and the graph size, so a warm
        // scratch — arena included — never grows mid-epoch.
        let caps_before = scratch.arena.caps();
        let mut arena = std::mem::take(&mut scratch.arena);
        arena.begin(seeds.len(), norm);
        {
            let n = graph.num_nodes();
            let mut rows_bound = seeds.len();
            let (mut worst_rows, mut worst_picked) = (0usize, 0usize);
            let mut nodes_bound = seeds.len();
            let (mut indptr_bound, mut entries_bound) = (0usize, 0usize);
            for layer in (0..num_layers).rev() {
                let fanout = self.fanouts[layer];
                let r = rows_bound.min(n);
                worst_rows = worst_rows.max(r);
                worst_picked = worst_picked.max(r * fanout);
                // Every pick lands one adjacency entry; at most that many
                // (and never more than the whole graph) are new src nodes.
                entries_bound += r * fanout;
                indptr_bound += r + 1;
                nodes_bound += (r * fanout).min(n);
                rows_bound = r + r * fanout;
            }
            scratch.warm_picks(worst_rows, worst_picked);
            arena.reserve(
                nodes_bound,
                indptr_bound,
                entries_bound,
                norm != Normalization::None,
            );
        }
        arena.nodes.extend_from_slice(seeds);
        for &v in seeds {
            arena.degree.push(graph.degree(v) as f32);
        }
        // Build from the output layer inward (fanouts accessed in reverse).
        // `prev` is the dst node range in the arena; each layer's src list
        // extends it in place (the dst prefix is shared, not copied — the
        // legacy path paid one `src` copy plus one `next` copy per layer).
        let mut prev = 0..seeds.len();
        for layer in (0..num_layers).rev() {
            let fanout = self.fanouts[layer];
            let rows = prev.len();
            pick_layer(
                graph,
                &arena.nodes[prev.start..prev.end],
                fanout,
                stream,
                layer as u64,
                scratch,
                pool,
            );
            // Relabel phase (serial): dense-table dedup in row order; column
            // indices land directly in the arena CSR as they are assigned.
            scratch.begin_dedup(graph.num_nodes());
            for (i, idx) in (prev.start..prev.end).enumerate() {
                scratch.dedup_insert(arena.nodes[idx], i as u32);
            }
            let entries_start = arena.indices.len();
            let indptr_start = arena.indptr.len();
            arena.indptr.push(0);
            // Move the pick buffers out so the dedup table can be borrowed
            // mutably alongside them (moved back below; no allocation).
            let picked = std::mem::take(&mut scratch.picked);
            let counts = std::mem::take(&mut scratch.counts);
            for i in 0..rows {
                let cnt = counts[i] as usize;
                let row = &picked[i * fanout..i * fanout + cnt];
                for &u in row {
                    let idx = match scratch.dedup_get(u) {
                        Some(idx) => idx,
                        None => {
                            let idx = (arena.nodes.len() - prev.start) as u32;
                            scratch.dedup_insert(u, idx);
                            arena.nodes.push(u);
                            idx
                        }
                    };
                    arena.indices.push(idx);
                }
                // Fused normalization: values land during assembly instead
                // of a second walk over the finished block.
                if norm != Normalization::None {
                    if norm == Normalization::Mean {
                        let inv = 1.0 / (cnt.max(1)) as f32;
                        for _ in 0..cnt {
                            arena.values.push(inv);
                        }
                    } else {
                        let dv = inv_sqrt[arena.nodes[prev.start + i] as usize];
                        for &u in row {
                            arena.values.push(dv * inv_sqrt[u as usize]);
                        }
                    }
                }
                arena
                    .indptr
                    .push((arena.indices.len() - entries_start) as u32);
            }
            scratch.picked = picked;
            scratch.counts = counts;
            for idx in prev.end..arena.nodes.len() {
                arena.degree.push(graph.degree(arena.nodes[idx]) as f32);
            }
            let src_end = arena.nodes.len();
            arena.layers.push(LayerRec {
                nodes: prev.start..src_end,
                rows,
                indptr: indptr_start..arena.indptr.len(),
                entries: entries_start..arena.indices.len(),
            });
            prev = prev.start..src_end;
        }
        scratch.note_growth(arena.caps() > caps_before);
        scratch.arena = arena;
        let scratch_ref: &'a SamplerScratch = scratch;
        SampledBatchView::blocks(&scratch_ref.arena)
    }

    fn name(&self) -> &'static str {
        "Neighbor"
    }

    fn num_layers(&self) -> usize {
        self.fanouts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{MiniBatch, SampledBatch};
    use argo_graph::generators::power_law;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    fn minibatch(batch: SampledBatch) -> MiniBatch {
        match batch {
            SampledBatch::Blocks(mb) => mb,
            _ => panic!("expected blocks"),
        }
    }

    #[test]
    fn respects_fanout_bounds() {
        let g = power_law(500, 4000, 0.8, 1);
        let s = NeighborSampler::new(vec![4, 2]);
        let mb = minibatch(s.sample(&g, &[0, 1, 2, 3], &mut rng(5)));
        assert_eq!(mb.blocks.len(), 2);
        // Output block: dst == seeds, fanout 2 (layer index 1).
        let out = &mb.blocks[1];
        assert_eq!(out.dst_nodes, vec![0, 1, 2, 3]);
        for i in 0..out.adj.rows() {
            let deg = out.adj.indptr()[i + 1] - out.adj.indptr()[i];
            assert!(deg <= 2, "fanout violated: {deg}");
        }
        // Input block fanout 4.
        let inp = &mb.blocks[0];
        for i in 0..inp.adj.rows() {
            let deg = inp.adj.indptr()[i + 1] - inp.adj.indptr()[i];
            assert!(deg <= 4);
        }
    }

    #[test]
    fn sampled_edges_exist_in_graph() {
        let g = power_law(300, 3000, 0.8, 2);
        let s = NeighborSampler::new(vec![5, 3]);
        let mb = minibatch(s.sample(&g, &[10, 20, 30], &mut rng(9)));
        for b in &mb.blocks {
            for i in 0..b.adj.rows() {
                let v = b.dst_nodes[i];
                for k in b.adj.indptr()[i]..b.adj.indptr()[i + 1] {
                    let u = b.src_nodes[b.adj.indices()[k] as usize];
                    assert!(g.has_edge(v, u), "edge {v}->{u} not in graph");
                }
            }
        }
    }

    #[test]
    fn src_prefix_is_dst() {
        let g = power_law(300, 3000, 0.8, 3);
        let s = NeighborSampler::paper_default();
        let mb = minibatch(s.sample(&g, &[1, 2], &mut rng(4)));
        for b in &mb.blocks {
            assert_eq!(&b.src_nodes[..b.dst_nodes.len()], &b.dst_nodes[..]);
        }
    }

    #[test]
    fn layers_chain() {
        let g = power_law(300, 3000, 0.8, 4);
        let s = NeighborSampler::new(vec![3, 3, 3]);
        let mb = minibatch(s.sample(&g, &[5, 6], &mut rng(7)));
        assert_eq!(mb.blocks.len(), 3);
        // src of layer l+1's perspective: dst of block l+1 equals src of... in
        // our ordering blocks[l].dst == blocks[l+1].src? No: forward order —
        // blocks[l] consumes blocks[l]'s src and produces dst which feeds
        // blocks[l+1] as src.
        for l in 0..2 {
            assert_eq!(mb.blocks[l].dst_nodes, mb.blocks[l + 1].src_nodes);
        }
        assert_eq!(mb.blocks[2].dst_nodes, mb.seeds);
    }

    #[test]
    fn no_duplicate_src_nodes() {
        let g = power_law(400, 4000, 0.8, 5);
        let s = NeighborSampler::paper_default();
        let mb = minibatch(s.sample(&g, &[0, 1, 2, 3, 4], &mut rng(11)));
        for b in &mb.blocks {
            let mut ids = b.src_nodes.clone();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), before, "duplicate src node");
        }
    }

    #[test]
    fn no_replacement_within_a_row() {
        let g = power_law(400, 8000, 0.7, 6);
        let s = NeighborSampler::new(vec![10]);
        let mb = minibatch(s.sample(&g, &(0..50).collect::<Vec<_>>(), &mut rng(13)));
        let b = &mb.blocks[0];
        for i in 0..b.adj.rows() {
            let row = &b.adj.indices()[b.adj.indptr()[i]..b.adj.indptr()[i + 1]];
            // Distinct local indices; note parallel edges in the graph mean a
            // neighbor *can* repeat as often as its multiplicity, but our
            // Fisher-Yates picks distinct positions, so duplicates only occur
            // for parallel edges. Check there is no excess.
            let mut sorted = row.to_vec();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                if w[0] == w[1] {
                    // allowed only when the underlying multi-edge exists
                    let v = b.dst_nodes[i];
                    let u = b.src_nodes[w[0] as usize];
                    let mult = g.neighbors(v).iter().filter(|&&x| x == u).count();
                    assert!(mult >= 2, "non-multi-edge duplicated");
                }
            }
        }
    }

    #[test]
    fn deterministic_in_rng() {
        let g = power_law(200, 2000, 0.8, 7);
        let s = NeighborSampler::new(vec![4, 4]);
        let a = minibatch(s.sample(&g, &[1, 2, 3], &mut rng(21)));
        let b = minibatch(s.sample(&g, &[1, 2, 3], &mut rng(21)));
        for (x, y) in a.blocks.iter().zip(&b.blocks) {
            assert_eq!(x.src_nodes, y.src_nodes);
            assert_eq!(x.adj.indices(), y.adj.indices());
        }
    }

    #[test]
    fn isolated_seed_has_empty_rows() {
        // Node 3 isolated (no edges mention it).
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)], true);
        let s = NeighborSampler::new(vec![3]);
        let mb = minibatch(s.sample(&g, &[3], &mut rng(1)));
        assert_eq!(mb.blocks[0].adj.nnz(), 0);
        assert_eq!(mb.input_nodes(), &[3]);
    }
}
