//! Borrowed batch views over the sampler's batch arena.
//!
//! [`Sampler::sample_into`](crate::Sampler::sample_into) assembles a batch
//! directly inside [`SamplerScratch`](crate::SamplerScratch)'s
//! [`BatchArena`](crate::scratch::BatchArena) and returns a
//! [`SampledBatchView`] — slices into that arena plus
//! [`SparseView`](argo_tensor::SparseView) adjacencies. Consumers on the
//! same thread (the serving session, inference forward passes) aggregate
//! straight out of the arena with zero copies; anything that must cross an
//! ownership boundary — the loader's reorder-heap channel, training's
//! CSC-backed backward pass — calls [`SampledBatchView::to_owned`], which
//! materializes the exact same [`SampledBatch`] the legacy assembly
//! produced (pinned bitwise by proptest).

use argo_graph::NodeId;
use argo_tensor::SparseView;

use crate::batch::{Block, MiniBatch, Normalization, SampledBatch, SubgraphBatch};
use crate::scratch::{BatchArena, LayerRec};

/// One bipartite message-passing layer borrowed from the arena — the view
/// twin of [`Block`].
#[derive(Clone, Copy, Debug)]
pub struct BlockView<'a> {
    /// Global ids of input nodes; the first `dst_nodes.len()` entries equal
    /// `dst_nodes`.
    pub src_nodes: &'a [NodeId],
    /// Global ids of output nodes.
    pub dst_nodes: &'a [NodeId],
    /// Sampled adjacency: `dst_nodes.len() x src_nodes.len()`.
    pub adj: SparseView<'a>,
    /// Global (full-graph) degree of each dst node.
    pub dst_degree: &'a [f32],
    /// Global degree of each src node.
    pub src_degree: &'a [f32],
    /// Normalization already fused into `adj`'s values (if any).
    pub norm: Normalization,
}

impl BlockView<'_> {
    /// Materializes an owned [`Block`] (legacy-identical).
    pub fn to_owned(&self) -> Block {
        Block {
            src_nodes: self.src_nodes.to_vec(),
            dst_nodes: self.dst_nodes.to_vec(),
            adj: self.adj.to_owned(),
            dst_degree: self.dst_degree.to_vec(),
            src_degree: self.src_degree.to_vec(),
            norm: self.norm,
        }
    }
}

/// A layered mini-batch borrowed from the arena — the view twin of
/// [`MiniBatch`]. Blocks are ordered input layer → output layer, as in the
/// owned type; interior node lists are shared between adjacent blocks
/// (block `l`'s dst slice *is* block `l+1`'s src prefix range), which is
/// exactly the copy the legacy assembly paid per layer.
#[derive(Clone, Copy, Debug)]
pub struct MiniBatchView<'a> {
    pub(crate) arena: &'a BatchArena,
}

impl<'a> MiniBatchView<'a> {
    /// Number of blocks (layers).
    pub fn num_blocks(&self) -> usize {
        self.arena.layers.len()
    }

    /// Target (output) nodes of this batch.
    pub fn seeds(&self) -> &'a [NodeId] {
        &self.arena.nodes[..self.arena.n_seeds]
    }

    /// Block `l` in forward (input layer → output layer) order.
    pub fn block(&self, l: usize) -> BlockView<'a> {
        let num = self.arena.layers.len();
        // Records are stored in assembly order (output layer first).
        let p = num - 1 - l;
        let rec = &self.arena.layers[p];
        let dst = if p == 0 {
            0..self.arena.n_seeds
        } else {
            let d = &self.arena.layers[p - 1].nodes;
            d.start..d.end
        };
        block_view(self.arena, rec, dst)
    }

    /// Nodes whose input features are needed (src of the input-side block).
    pub fn input_nodes(&self) -> &'a [NodeId] {
        let rec = &self.arena.layers[self.arena.layers.len() - 1];
        &self.arena.nodes[rec.nodes.start..rec.nodes.end]
    }

    /// Total sampled edges across all layers.
    pub fn total_edges(&self) -> usize {
        self.arena.layers.iter().map(|r| r.entries.len()).sum()
    }

    /// Materializes an owned [`MiniBatch`] (legacy-identical).
    pub fn to_owned(&self) -> MiniBatch {
        MiniBatch {
            seeds: self.seeds().to_vec(),
            blocks: (0..self.num_blocks())
                .map(|l| self.block(l).to_owned())
                .collect(),
        }
    }
}

/// A subgraph batch borrowed from the arena — the view twin of
/// [`SubgraphBatch`]. Seeds are the prefix of `nodes` (every subgraph
/// sampler puts them there), so seed positions are implicitly
/// `0..num_seeds` and never stored.
#[derive(Clone, Copy, Debug)]
pub struct SubgraphView<'a> {
    pub(crate) arena: &'a BatchArena,
}

impl<'a> SubgraphView<'a> {
    /// Global ids of subgraph nodes (features gathered for all of them).
    pub fn nodes(&self) -> &'a [NodeId] {
        &self.arena.nodes
    }

    /// Square relabeled adjacency over `nodes`.
    pub fn adj(&self) -> SparseView<'a> {
        let rec = &self.arena.layers[0];
        adj_view(self.arena, rec)
    }

    /// Global ids of the seeds — the prefix of `nodes`.
    pub fn seeds(&self) -> &'a [NodeId] {
        &self.arena.nodes[..self.arena.n_seeds]
    }

    /// Number of seeds.
    pub fn num_seeds(&self) -> usize {
        self.arena.n_seeds
    }

    /// Global degree of each subgraph node.
    pub fn degree(&self) -> &'a [f32] {
        &self.arena.degree
    }

    /// Normalization fused into the adjacency values (if any).
    pub fn norm(&self) -> Normalization {
        self.arena.norm
    }

    /// Materializes an owned [`SubgraphBatch`] (legacy-identical).
    pub fn to_owned(&self) -> SubgraphBatch {
        SubgraphBatch {
            nodes: self.nodes().to_vec(),
            adj: self.adj().to_owned(),
            seed_positions: (0..self.arena.n_seeds).collect(),
            seeds: self.seeds().to_vec(),
            degree: self.degree().to_vec(),
            norm: self.arena.norm,
        }
    }
}

fn adj_view<'a>(arena: &'a BatchArena, rec: &LayerRec) -> SparseView<'a> {
    let values = if arena.values.is_empty() {
        None
    } else {
        Some(&arena.values[rec.entries.start..rec.entries.end])
    };
    SparseView::new(
        rec.rows,
        rec.nodes.len(),
        &arena.indptr[rec.indptr.start..rec.indptr.end],
        &arena.indices[rec.entries.start..rec.entries.end],
        values,
    )
}

fn block_view<'a>(
    arena: &'a BatchArena,
    rec: &LayerRec,
    dst: std::ops::Range<usize>,
) -> BlockView<'a> {
    BlockView {
        src_nodes: &arena.nodes[rec.nodes.start..rec.nodes.end],
        dst_nodes: &arena.nodes[dst.start..dst.end],
        adj: adj_view(arena, rec),
        dst_degree: &arena.degree[dst.start..dst.end],
        src_degree: &arena.degree[rec.nodes.start..rec.nodes.end],
        norm: arena.norm,
    }
}

/// Either shape of borrowed batch — the view twin of [`SampledBatch`].
#[derive(Clone, Copy, Debug)]
pub enum SampledBatchView<'a> {
    /// Layered bipartite blocks (neighbor sampling).
    Blocks(MiniBatchView<'a>),
    /// One induced subgraph (ShaDow / SAINT / Cluster-GCN sampling).
    Subgraph(SubgraphView<'a>),
}

impl<'a> SampledBatchView<'a> {
    /// Wraps the arena's resident layered batch.
    pub(crate) fn blocks(arena: &'a BatchArena) -> Self {
        SampledBatchView::Blocks(MiniBatchView { arena })
    }

    /// Wraps the arena's resident subgraph batch.
    pub(crate) fn subgraph(arena: &'a BatchArena) -> Self {
        SampledBatchView::Subgraph(SubgraphView { arena })
    }

    fn arena(&self) -> &'a BatchArena {
        match self {
            SampledBatchView::Blocks(mb) => mb.arena,
            SampledBatchView::Subgraph(sb) => sb.arena,
        }
    }

    /// Target nodes of the batch.
    pub fn seeds(&self) -> &'a [NodeId] {
        let arena = self.arena();
        &arena.nodes[..arena.n_seeds]
    }

    /// Nodes whose raw features must be gathered.
    pub fn input_nodes(&self) -> &'a [NodeId] {
        match self {
            SampledBatchView::Blocks(mb) => mb.input_nodes(),
            SampledBatchView::Subgraph(sb) => sb.nodes(),
        }
    }

    /// Total edges processed by one forward pass (workload proxy). For
    /// subgraph batches the adjacency is traversed once per layer.
    pub fn total_edges(&self, num_layers: usize) -> usize {
        match self {
            SampledBatchView::Blocks(mb) => mb.total_edges(),
            SampledBatchView::Subgraph(sb) => sb.adj().nnz() * num_layers,
        }
    }

    /// Number of seed (target) nodes.
    pub fn num_seeds(&self) -> usize {
        self.arena().n_seeds
    }

    /// Normalization fused into the adjacency values (if any).
    pub fn norm(&self) -> Normalization {
        self.arena().norm
    }

    /// Bytes of batch metadata resident in the arena — the compact layout
    /// the `bytes_summary` accounting reports (node ids, degrees, `u32` row
    /// pointers, column indices, fused values).
    pub fn metadata_bytes(&self) -> usize {
        self.arena().metadata_bytes()
    }

    /// Materializes an owned [`SampledBatch`], bitwise-identical to what
    /// the legacy edge-list assembly produced — the fallback at the
    /// loader's reorder-heap handoff and for training.
    pub fn to_owned(&self) -> SampledBatch {
        match self {
            SampledBatchView::Blocks(mb) => SampledBatch::Blocks(mb.to_owned()),
            SampledBatchView::Subgraph(sb) => SampledBatch::Subgraph(sb.to_owned()),
        }
    }
}
