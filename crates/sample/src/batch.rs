//! Sampled mini-batch structures.

use argo_graph::NodeId;
use argo_tensor::SparseMatrix;

/// Which normalization the values of a sampled adjacency already carry.
///
/// Samplers fuse normalization into block construction (the values are
/// written while the adjacency is assembled, using the graph's precomputed
/// `inv_sqrt_degrees` table), so consumers that want the same scheme can use
/// `adj` directly instead of re-walking every block to allocate a second
/// values vector per batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Normalization {
    /// `adj` carries no values (binary adjacency).
    #[default]
    None,
    /// Row-mean: `1/k_i` per sampled in-edge of dst `i` (GraphSAGE, Eq. 2).
    Mean,
    /// Symmetric GCN: `1/sqrt(D(v)·D(u))` with *global* degrees (Eq. 1).
    Gcn,
}

/// One bipartite message-passing layer of a sampled mini-batch
/// (DGL calls this a *block*).
///
/// Rows of `adj` are the `dst_nodes` (outputs of this layer), columns are the
/// `src_nodes` (inputs). By construction `src_nodes` starts with a copy of
/// `dst_nodes`, so a layer can read its own previous-layer embedding at row
/// `i` from source position `i` (needed by GraphSAGE's concat, Eq. 2).
#[derive(Clone, Debug)]
pub struct Block {
    /// Global ids of input nodes; the first `dst_nodes.len()` entries equal
    /// `dst_nodes`.
    pub src_nodes: Vec<NodeId>,
    /// Global ids of output nodes.
    pub dst_nodes: Vec<NodeId>,
    /// Sampled adjacency: `dst_nodes.len() x src_nodes.len()`, no values.
    pub adj: SparseMatrix,
    /// Global (full-graph) degree of each dst node — GCN normalization.
    pub dst_degree: Vec<f32>,
    /// Global degree of each src node.
    pub src_degree: Vec<f32>,
    /// Normalization already fused into `adj`'s values (if any).
    pub norm: Normalization,
}

impl Block {
    /// Row-mean normalization: value `1/k_i` for each of the `k_i` sampled
    /// in-edges of dst `i` (GraphSAGE mean aggregator).
    pub fn mean_normalized(&self) -> SparseMatrix {
        let indptr = self.adj.indptr();
        let mut values = vec![0.0f32; self.adj.nnz()];
        for i in 0..self.adj.rows() {
            let (lo, hi) = (indptr[i], indptr[i + 1]);
            if hi > lo {
                let inv = 1.0 / (hi - lo) as f32;
                for v in &mut values[lo..hi] {
                    *v = inv;
                }
            }
        }
        self.adj.with_values(values)
    }

    /// Symmetric GCN normalization: value `1/sqrt(D(v)·D(u))` using *global*
    /// degrees (Eq. 1).
    pub fn gcn_normalized(&self) -> SparseMatrix {
        let indptr = self.adj.indptr();
        let indices = self.adj.indices();
        let mut values = vec![0.0f32; self.adj.nnz()];
        for i in 0..self.adj.rows() {
            let dv = self.dst_degree[i].max(1.0);
            for k in indptr[i]..indptr[i + 1] {
                let du = self.src_degree[indices[k] as usize].max(1.0);
                values[k] = 1.0 / (dv * du).sqrt();
            }
        }
        self.adj.with_values(values)
    }

    /// Number of sampled edges in this block.
    pub fn num_edges(&self) -> usize {
        self.adj.nnz()
    }
}

/// A layered mini-batch from neighbor sampling.
///
/// `blocks[0]` is the *input-side* layer: its `src_nodes` are the nodes whose
/// raw features must be gathered. `blocks.last()` has `dst_nodes == seeds`.
#[derive(Clone, Debug)]
pub struct MiniBatch {
    /// Target (output) nodes of this batch.
    pub seeds: Vec<NodeId>,
    /// Blocks ordered input layer → output layer.
    pub blocks: Vec<Block>,
}

impl MiniBatch {
    /// Nodes whose input features are needed.
    pub fn input_nodes(&self) -> &[NodeId] {
        &self.blocks[0].src_nodes
    }

    /// Total sampled edges across all layers — the paper's workload proxy
    /// ("the number of aggregations performed is proportional to the number
    /// of edges", Section V-A1).
    pub fn total_edges(&self) -> usize {
        self.blocks.iter().map(Block::num_edges).sum()
    }
}

/// A ShaDow-style batch: one induced localized subgraph shared by all GNN
/// layers; outputs are read at `seed_positions`.
#[derive(Clone, Debug)]
pub struct SubgraphBatch {
    /// Global ids of subgraph nodes (features gathered for all of them).
    pub nodes: Vec<NodeId>,
    /// Square relabeled adjacency over `nodes`.
    pub adj: SparseMatrix,
    /// Positions of the seeds within `nodes`.
    pub seed_positions: Vec<usize>,
    /// Global ids of the seeds (`nodes[p]` for each `p` in `seed_positions`),
    /// precomputed so [`SampledBatch::seeds`] can borrow instead of allocate.
    pub seeds: Vec<NodeId>,
    /// Global degree of each subgraph node.
    pub degree: Vec<f32>,
    /// Normalization already fused into `adj`'s values (if any).
    pub norm: Normalization,
}

impl SubgraphBatch {
    /// Row-mean normalization over the induced subgraph.
    pub fn mean_normalized(&self) -> SparseMatrix {
        let indptr = self.adj.indptr();
        let mut values = vec![0.0f32; self.adj.nnz()];
        for i in 0..self.adj.rows() {
            let (lo, hi) = (indptr[i], indptr[i + 1]);
            if hi > lo {
                let inv = 1.0 / (hi - lo) as f32;
                for v in &mut values[lo..hi] {
                    *v = inv;
                }
            }
        }
        self.adj.with_values(values)
    }

    /// Symmetric GCN normalization using global degrees.
    pub fn gcn_normalized(&self) -> SparseMatrix {
        let indptr = self.adj.indptr();
        let indices = self.adj.indices();
        let mut values = vec![0.0f32; self.adj.nnz()];
        for i in 0..self.adj.rows() {
            let dv = self.degree[i].max(1.0);
            for k in indptr[i]..indptr[i + 1] {
                let du = self.degree[indices[k] as usize].max(1.0);
                values[k] = 1.0 / (dv * du).sqrt();
            }
        }
        self.adj.with_values(values)
    }
}

/// Either shape of sampled batch.
#[derive(Clone, Debug)]
pub enum SampledBatch {
    /// Layered bipartite blocks (neighbor sampling).
    Blocks(MiniBatch),
    /// One induced subgraph (ShaDow sampling).
    Subgraph(SubgraphBatch),
}

impl SampledBatch {
    /// Target nodes of the batch. Borrows — the engine calls this per batch,
    /// and cloning a seed vector per step was a measurable allocation.
    pub fn seeds(&self) -> &[NodeId] {
        match self {
            SampledBatch::Blocks(mb) => &mb.seeds,
            SampledBatch::Subgraph(sb) => &sb.seeds,
        }
    }

    /// Nodes whose raw features must be gathered.
    pub fn input_nodes(&self) -> &[NodeId] {
        match self {
            SampledBatch::Blocks(mb) => mb.input_nodes(),
            SampledBatch::Subgraph(sb) => &sb.nodes,
        }
    }

    /// Total edges processed by one forward pass (workload proxy). For
    /// ShaDow the subgraph adjacency is traversed once per layer.
    pub fn total_edges(&self, num_layers: usize) -> usize {
        match self {
            SampledBatch::Blocks(mb) => mb.total_edges(),
            SampledBatch::Subgraph(sb) => sb.adj.nnz() * num_layers,
        }
    }

    /// Number of seed (target) nodes.
    pub fn num_seeds(&self) -> usize {
        match self {
            SampledBatch::Blocks(mb) => mb.seeds.len(),
            SampledBatch::Subgraph(sb) => sb.seed_positions.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> Block {
        // 2 dst, 3 src; dst0 <- {src0, src2}, dst1 <- {src1}
        Block {
            src_nodes: vec![10, 11, 12],
            dst_nodes: vec![10, 11],
            adj: SparseMatrix::new(2, 3, vec![0, 2, 3], vec![0, 2, 1], None),
            dst_degree: vec![4.0, 9.0],
            src_degree: vec![4.0, 9.0, 1.0],
            norm: Normalization::None,
        }
    }

    #[test]
    fn mean_normalization_rows_sum_to_one() {
        let b = block();
        let m = b.mean_normalized();
        let vals = m.values().unwrap();
        assert_eq!(vals, &[0.5, 0.5, 1.0]);
    }

    #[test]
    fn gcn_normalization_uses_global_degrees() {
        let b = block();
        let g = b.gcn_normalized();
        let vals = g.values().unwrap();
        // dst0 (deg 4) <- src0 (deg 4): 1/sqrt(16) = 0.25
        assert!((vals[0] - 0.25).abs() < 1e-6);
        // dst0 (deg 4) <- src2 (deg 1): 1/sqrt(4) = 0.5
        assert!((vals[1] - 0.5).abs() < 1e-6);
        // dst1 (deg 9) <- src1 (deg 9): 1/9
        assert!((vals[2] - 1.0 / 9.0).abs() < 1e-6);
    }

    #[test]
    fn minibatch_accessors() {
        let b0 = block();
        let b1 = block();
        let mb = MiniBatch {
            seeds: vec![10, 11],
            blocks: vec![b0, b1],
        };
        assert_eq!(mb.input_nodes(), &[10, 11, 12]);
        assert_eq!(mb.total_edges(), 6);
        let sb = SampledBatch::Blocks(mb);
        assert_eq!(sb.seeds(), vec![10, 11]);
        assert_eq!(sb.num_seeds(), 2);
        assert_eq!(sb.total_edges(3), 6);
    }

    #[test]
    fn subgraph_batch_accessors() {
        let sb = SubgraphBatch {
            nodes: vec![5, 6, 7],
            adj: SparseMatrix::new(3, 3, vec![0, 1, 2, 2], vec![1, 0], None),
            seed_positions: vec![0],
            seeds: vec![5],
            degree: vec![1.0, 1.0, 0.0],
            norm: Normalization::None,
        };
        let s = SampledBatch::Subgraph(sb);
        assert_eq!(s.seeds(), vec![5]);
        assert_eq!(s.input_nodes(), &[5, 6, 7]);
        assert_eq!(s.total_edges(3), 6); // 2 edges × 3 layers
    }

    #[test]
    fn subgraph_mean_norm_handles_empty_rows() {
        let sb = SubgraphBatch {
            nodes: vec![1, 2],
            adj: SparseMatrix::new(2, 2, vec![0, 1, 1], vec![1], None),
            seed_positions: vec![0, 1],
            seeds: vec![1, 2],
            degree: vec![3.0, 3.0],
            norm: Normalization::None,
        };
        let m = sb.mean_normalized();
        assert_eq!(m.values().unwrap(), &[1.0]);
        let g = sb.gcn_normalized();
        assert!((g.values().unwrap()[0] - 1.0 / 3.0).abs() < 1e-6);
    }
}
