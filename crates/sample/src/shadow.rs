//! ShaDow-GNN sampling (Zeng et al. 2021; paper Section II-B).
//!
//! For every mini-batch, a localized subgraph is built by sampling `L'` hops
//! around the seeds (the paper uses fanouts `[10, 5]`); the GNN then runs all
//! of its layers *inside* that subgraph, decoupling model depth from
//! receptive-field scope and avoiding neighbor explosion.

use argo_graph::{Graph, NodeId};
use argo_tensor::SparseMatrix;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::batch::{SampledBatch, SubgraphBatch};
use crate::Sampler;

/// ShaDow sampler: localized-subgraph fanouts plus the number of GNN layers
/// that will run on the subgraph.
#[derive(Clone, Debug)]
pub struct ShadowSampler {
    fanouts: Vec<usize>,
    num_layers: usize,
}

impl ShadowSampler {
    /// `fanouts` bound the per-hop expansion of the localized subgraph;
    /// `num_layers` is the depth of the GNN that will run on it.
    pub fn new(fanouts: Vec<usize>, num_layers: usize) -> Self {
        assert!(!fanouts.is_empty() && fanouts.iter().all(|&f| f > 0));
        assert!(num_layers > 0);
        Self {
            fanouts,
            num_layers,
        }
    }

    /// The paper's configuration: localized fanouts `[10, 5]` under a
    /// 3-layer model.
    pub fn paper_default() -> Self {
        Self::new(vec![10, 5], 3)
    }

    /// The configured fanouts.
    pub fn fanouts(&self) -> &[usize] {
        &self.fanouts
    }
}

impl Sampler for ShadowSampler {
    fn sample(&self, graph: &Graph, seeds: &[NodeId], rng: &mut SmallRng) -> SampledBatch {
        // Hop-limited randomized BFS from all seeds at once; dedup keeps the
        // union of the localized subgraphs, seeds first.
        let mut nodes: Vec<NodeId> = seeds.to_vec();
        let mut local: std::collections::HashMap<NodeId, u32> =
            std::collections::HashMap::with_capacity(seeds.len() * 8);
        for (i, &v) in seeds.iter().enumerate() {
            assert!(
                local.insert(v, i as u32).is_none(),
                "duplicate seed {v} in ShaDow batch"
            );
        }
        let mut frontier: Vec<NodeId> = seeds.to_vec();
        let mut scratch: Vec<NodeId> = Vec::new();
        for &fanout in &self.fanouts {
            let mut next: Vec<NodeId> = Vec::new();
            for &v in &frontier {
                let neigh = graph.neighbors(v);
                let take = fanout.min(neigh.len());
                if neigh.len() <= fanout {
                    scratch.clear();
                    scratch.extend_from_slice(neigh);
                } else {
                    scratch.clear();
                    scratch.extend_from_slice(neigh);
                    for i in 0..take {
                        let j = rng.gen_range(i..scratch.len());
                        scratch.swap(i, j);
                    }
                    scratch.truncate(take);
                }
                for &u in scratch.iter().take(take) {
                    if let std::collections::hash_map::Entry::Vacant(e) = local.entry(u) {
                        e.insert(nodes.len() as u32);
                        nodes.push(u);
                        next.push(u);
                    }
                }
            }
            frontier = next;
        }
        // Induced adjacency over the collected nodes, relabeled.
        let n = nodes.len();
        let mut indptr = Vec::with_capacity(n + 1);
        indptr.push(0usize);
        let mut indices: Vec<u32> = Vec::new();
        for &v in &nodes {
            let mut row: Vec<u32> = graph
                .neighbors(v)
                .iter()
                .filter_map(|u| local.get(u).copied())
                .collect();
            row.sort_unstable();
            indices.extend_from_slice(&row);
            indptr.push(indices.len());
        }
        let adj = SparseMatrix::new(n, n, indptr, indices, None);
        let degree = nodes.iter().map(|&v| graph.degree(v) as f32).collect();
        SampledBatch::Subgraph(SubgraphBatch {
            seed_positions: (0..seeds.len()).collect(),
            nodes,
            adj,
            degree,
        })
    }

    fn name(&self) -> &'static str {
        "ShaDow"
    }

    fn num_layers(&self) -> usize {
        self.num_layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_graph::generators::power_law;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    fn subgraph(batch: SampledBatch) -> SubgraphBatch {
        match batch {
            SampledBatch::Subgraph(sb) => sb,
            _ => panic!("expected subgraph"),
        }
    }

    #[test]
    fn seeds_lead_the_node_list() {
        let g = power_law(300, 3000, 0.8, 1);
        let s = ShadowSampler::paper_default();
        let sb = subgraph(s.sample(&g, &[7, 8, 9], &mut rng(2)));
        assert_eq!(&sb.nodes[..3], &[7, 8, 9]);
        assert_eq!(sb.seed_positions, vec![0, 1, 2]);
    }

    #[test]
    fn subgraph_edges_exist_in_parent() {
        let g = power_law(300, 3000, 0.8, 3);
        let s = ShadowSampler::new(vec![5, 3], 2);
        let sb = subgraph(s.sample(&g, &[1, 2], &mut rng(4)));
        for i in 0..sb.adj.rows() {
            let v = sb.nodes[i];
            for k in sb.adj.indptr()[i]..sb.adj.indptr()[i + 1] {
                let u = sb.nodes[sb.adj.indices()[k] as usize];
                assert!(g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn induced_subgraph_is_symmetric() {
        // Parent graph is undirected, so the induced adjacency must be too.
        let g = power_law(300, 3000, 0.8, 5);
        let s = ShadowSampler::paper_default();
        let sb = subgraph(s.sample(&g, &[0, 10, 20], &mut rng(6)));
        let dense = sb.adj.to_dense();
        for i in 0..dense.rows() {
            for j in 0..dense.cols() {
                assert_eq!(dense.get(i, j), dense.get(j, i), "asym at ({i},{j})");
            }
        }
    }

    #[test]
    fn growth_is_bounded_by_fanouts() {
        let g = power_law(2000, 40000, 0.7, 7);
        let seeds: Vec<NodeId> = (0..8).collect();
        let s = ShadowSampler::new(vec![10, 5], 3);
        let sb = subgraph(s.sample(&g, &seeds, &mut rng(8)));
        // Upper bound: seeds * (1 + 10 + 10*5).
        assert!(sb.nodes.len() <= 8 * 61, "grew to {}", sb.nodes.len());
        assert!(sb.nodes.len() >= 8);
    }

    #[test]
    fn deterministic_in_rng() {
        let g = power_law(500, 5000, 0.8, 9);
        let s = ShadowSampler::paper_default();
        let a = subgraph(s.sample(&g, &[3, 4], &mut rng(11)));
        let b = subgraph(s.sample(&g, &[3, 4], &mut rng(11)));
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.adj.indices(), b.adj.indices());
    }

    #[test]
    fn no_duplicate_nodes() {
        let g = power_law(500, 5000, 0.8, 10);
        let s = ShadowSampler::paper_default();
        let sb = subgraph(s.sample(&g, &(0..20).collect::<Vec<_>>(), &mut rng(12)));
        let mut ids = sb.nodes.clone();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    #[should_panic]
    fn duplicate_seeds_panic() {
        let g = power_law(100, 500, 0.8, 13);
        let s = ShadowSampler::paper_default();
        s.sample(&g, &[1, 1], &mut rng(1));
    }
}
