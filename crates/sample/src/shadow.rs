//! ShaDow-GNN sampling (Zeng et al. 2021; paper Section II-B).
//!
//! For every mini-batch, a localized subgraph is built by sampling `L'` hops
//! around the seeds (the paper uses fanouts `[10, 5]`); the GNN then runs all
//! of its layers *inside* that subgraph, decoupling model depth from
//! receptive-field scope and avoiding neighbor explosion.

use argo_graph::{Graph, NodeId};
use argo_rt::{SeedSequence, StreamRng};

use crate::scratch::{arena_induced, floyd_positions, SamplerScratch};
use crate::view::SampledBatchView;
use crate::{SampleRun, Sampler};

/// ShaDow sampler: localized-subgraph fanouts plus the number of GNN layers
/// that will run on the subgraph.
#[derive(Clone, Debug)]
pub struct ShadowSampler {
    fanouts: Vec<usize>,
    num_layers: usize,
}

impl ShadowSampler {
    /// `fanouts` bound the per-hop expansion of the localized subgraph;
    /// `num_layers` is the depth of the GNN that will run on it.
    pub fn new(fanouts: Vec<usize>, num_layers: usize) -> Self {
        assert!(!fanouts.is_empty() && fanouts.iter().all(|&f| f > 0));
        assert!(num_layers > 0);
        Self {
            fanouts,
            num_layers,
        }
    }

    /// The paper's configuration: localized fanouts `[10, 5]` under a
    /// 3-layer model.
    pub fn paper_default() -> Self {
        Self::new(vec![10, 5], 3)
    }

    /// The configured fanouts.
    pub fn fanouts(&self) -> &[usize] {
        &self.fanouts
    }

    /// Discovery phase: hop-limited randomized BFS from all seeds at once;
    /// the dense dedup table keeps the union of the localized subgraphs,
    /// seeds first. Appends the discovered node set to `nodes` and leaves
    /// the dedup session registered over it, ready for induced assembly.
    pub(crate) fn discover_into(
        &self,
        graph: &Graph,
        seeds: &[NodeId],
        stream: SeedSequence,
        scratch: &mut SamplerScratch,
        nodes: &mut Vec<NodeId>,
    ) {
        scratch.begin_dedup(graph.num_nodes());
        nodes.extend_from_slice(seeds);
        for (i, &v) in seeds.iter().enumerate() {
            assert!(
                scratch.dedup_insert(v, i as u32),
                "duplicate seed {v} in ShaDow batch"
            );
        }
        scratch.acquire_frontiers(seeds.len());
        let max_fanout = self.fanouts.iter().copied().fold(0, usize::max);
        scratch.acquire_positions(max_fanout);
        // Move the buffers out so the dedup table stays borrowable (moved
        // back below; no allocation).
        let mut frontier = std::mem::take(&mut scratch.frontier);
        let mut next = std::mem::take(&mut scratch.next_frontier);
        let mut positions = std::mem::take(&mut scratch.positions);
        let caps_before = frontier.capacity() + next.capacity();
        frontier.extend_from_slice(seeds);
        for (hop, &fanout) in self.fanouts.iter().enumerate() {
            next.clear();
            for (fi, &v) in frontier.iter().enumerate() {
                let neigh = graph.neighbors(v);
                let deg = neigh.len();
                // Per-(hop, frontier-position) counter stream: draws depend
                // only on the node's logical BFS coordinate.
                let mut rng = StreamRng::new(stream.seed_for(hop as u64, fi as u64));
                let mut grow = |u: NodeId, nodes: &mut Vec<NodeId>, next: &mut Vec<NodeId>| {
                    if scratch.dedup_insert(u, nodes.len() as u32) {
                        nodes.push(u);
                        next.push(u);
                    }
                };
                if deg <= fanout {
                    for &u in neigh {
                        grow(u, nodes, &mut next);
                    }
                } else {
                    floyd_positions(&mut rng, deg, fanout, &mut positions);
                    for &p in positions.iter() {
                        grow(neigh[p as usize], nodes, &mut next);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        scratch.note_growth(frontier.capacity() + next.capacity() > caps_before);
        scratch.frontier = frontier;
        scratch.next_frontier = next;
        scratch.positions = positions;
    }
}

impl Sampler for ShadowSampler {
    fn sample_into<'a>(
        &self,
        graph: &Graph,
        seeds: &[NodeId],
        run: SampleRun<'a>,
    ) -> SampledBatchView<'a> {
        // The pool is intentionally unused: this sampler is dedup-dominated
        // and its frontier order is inherently sequential.
        let SampleRun {
            stream,
            norm,
            scratch,
            ..
        } = run;
        let caps_before = scratch.arena.caps();
        let mut arena = std::mem::take(&mut scratch.arena);
        arena.begin(seeds.len(), norm);
        self.discover_into(graph, seeds, stream, scratch, &mut arena.nodes);
        arena_induced(graph, &mut arena, scratch, norm);
        scratch.note_growth(arena.caps() > caps_before);
        scratch.arena = arena;
        let scratch_ref: &'a SamplerScratch = scratch;
        SampledBatchView::subgraph(&scratch_ref.arena)
    }

    fn name(&self) -> &'static str {
        "ShaDow"
    }

    fn num_layers(&self) -> usize {
        self.num_layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::SampledBatch;
    use crate::batch::SubgraphBatch;
    use argo_graph::generators::power_law;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    fn subgraph(batch: SampledBatch) -> SubgraphBatch {
        match batch {
            SampledBatch::Subgraph(sb) => sb,
            _ => panic!("expected subgraph"),
        }
    }

    #[test]
    fn seeds_lead_the_node_list() {
        let g = power_law(300, 3000, 0.8, 1);
        let s = ShadowSampler::paper_default();
        let sb = subgraph(s.sample(&g, &[7, 8, 9], &mut rng(2)));
        assert_eq!(&sb.nodes[..3], &[7, 8, 9]);
        assert_eq!(sb.seed_positions, vec![0, 1, 2]);
    }

    #[test]
    fn subgraph_edges_exist_in_parent() {
        let g = power_law(300, 3000, 0.8, 3);
        let s = ShadowSampler::new(vec![5, 3], 2);
        let sb = subgraph(s.sample(&g, &[1, 2], &mut rng(4)));
        for i in 0..sb.adj.rows() {
            let v = sb.nodes[i];
            for k in sb.adj.indptr()[i]..sb.adj.indptr()[i + 1] {
                let u = sb.nodes[sb.adj.indices()[k] as usize];
                assert!(g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn induced_subgraph_is_symmetric() {
        // Parent graph is undirected, so the induced adjacency must be too.
        let g = power_law(300, 3000, 0.8, 5);
        let s = ShadowSampler::paper_default();
        let sb = subgraph(s.sample(&g, &[0, 10, 20], &mut rng(6)));
        let dense = sb.adj.to_dense();
        for i in 0..dense.rows() {
            for j in 0..dense.cols() {
                assert_eq!(dense.get(i, j), dense.get(j, i), "asym at ({i},{j})");
            }
        }
    }

    #[test]
    fn growth_is_bounded_by_fanouts() {
        let g = power_law(2000, 40000, 0.7, 7);
        let seeds: Vec<NodeId> = (0..8).collect();
        let s = ShadowSampler::new(vec![10, 5], 3);
        let sb = subgraph(s.sample(&g, &seeds, &mut rng(8)));
        // Upper bound: seeds * (1 + 10 + 10*5).
        assert!(sb.nodes.len() <= 8 * 61, "grew to {}", sb.nodes.len());
        assert!(sb.nodes.len() >= 8);
    }

    #[test]
    fn deterministic_in_rng() {
        let g = power_law(500, 5000, 0.8, 9);
        let s = ShadowSampler::paper_default();
        let a = subgraph(s.sample(&g, &[3, 4], &mut rng(11)));
        let b = subgraph(s.sample(&g, &[3, 4], &mut rng(11)));
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.adj.indices(), b.adj.indices());
    }

    #[test]
    fn no_duplicate_nodes() {
        let g = power_law(500, 5000, 0.8, 10);
        let s = ShadowSampler::paper_default();
        let sb = subgraph(s.sample(&g, &(0..20).collect::<Vec<_>>(), &mut rng(12)));
        let mut ids = sb.nodes.clone();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    #[should_panic]
    fn duplicate_seeds_panic() {
        let g = power_law(100, 500, 0.8, 13);
        let s = ShadowSampler::paper_default();
        s.sample(&g, &[1, 1], &mut rng(1));
    }
}
