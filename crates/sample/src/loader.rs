//! Pipelined mini-batch loading: sampling overlapped with training.
//!
//! State-of-the-art GNN libraries overlap mini-batch sampling with model
//! propagation (paper Section V-A2); ARGO's auto-tuner decides how many
//! cores each side gets. [`PipelinedLoader`] implements the sampling side:
//! `n_samp` sampler threads (bound to the process's *sampling cores*)
//! prefetch batches into a bounded channel while the training thread
//! consumes them **in deterministic batch order** — batch `i` of epoch `e`
//! is always drawn from RNG seed `seed_for(e, i)` regardless of which worker
//! produced it, so pipelining never perturbs training semantics.
//!
//! When the [`LoaderSpec`] carries the node features, workers also
//! *pre-gather* each batch's input rows — optionally through a shared
//! [`FeatureCache`] — so the memory-bound gather runs on the sampling cores,
//! overlapped with training, instead of on the training cores.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use argo_graph::{Features, Graph, NodeId};
use argo_rt::affinity::{bind_current_thread, CoreSet};
use argo_rt::spans::{Role, SpanKind, SpanProfiler, WorkerRing};
use argo_rt::{SeedSequence, ThreadPool};
use argo_tensor::Matrix;
use crossbeam::channel::{bounded, Receiver};

use crate::batch::{Normalization, SampledBatch};
use crate::cache::FeatureCache;
use crate::scratch::SamplerScratch;
use crate::{SampleRun, Sampler};

/// Everything [`PipelinedLoader::start`] needs for one epoch of one
/// process. Construct via [`LoaderSpec::builder`].
#[derive(Clone)]
pub struct LoaderSpec {
    /// The (shared) graph to sample from.
    pub graph: Arc<Graph>,
    /// Sampling algorithm.
    pub sampler: Arc<dyn Sampler>,
    /// This process's training targets (already partitioned).
    pub seeds: Arc<Vec<NodeId>>,
    /// Local batch size (global batch / number of processes, per the
    /// Multi-Process Engine).
    pub batch_size: usize,
    /// Epoch number (selects the deterministic RNG stream).
    pub epoch: u64,
    /// The [`SeedSequence`] child for this process; batch `i` of `epoch`
    /// uses `epoch_seeds.seed_for(epoch, i)`.
    pub epoch_seeds: SeedSequence,
    /// Number of sampler threads.
    pub n_samp: usize,
    /// Sampling cores to bind the workers to (empty = unbound).
    pub cores: CoreSet,
    /// Channel capacity (bounds memory).
    pub prefetch: usize,
    /// Node features; when present, workers pre-gather each batch's input
    /// rows into [`LoadedBatch::input`].
    pub features: Option<Arc<Features>>,
    /// Shared cross-batch feature cache consulted before
    /// [`Features::gather`]. Ignored unless `features` is set.
    pub cache: Option<Arc<FeatureCache>>,
    /// Fused normalization the samplers write into each batch's adjacency
    /// values during construction (no post-pass on the training side).
    pub normalization: Normalization,
    /// Within-batch sampling parallelism. When > 1, each worker
    /// row-partitions a batch's seed rows over a thread pool spanning the
    /// sampling core set. Batch content is bitwise independent of this knob
    /// because every pick row draws from its own counter-based RNG stream.
    pub samp_pool: usize,
    /// Causal span profiler. When present, each worker registers a
    /// producer ring (pick/gather/cache/enqueue-wait spans keyed by batch
    /// id) and the consuming thread a consumer ring (channel/heap dequeue
    /// waits), feeding per-epoch critical-path attribution.
    pub spans: Option<Arc<SpanProfiler>>,
}

impl LoaderSpec {
    /// A builder seeded with the three mandatory handles; everything else
    /// defaults (`batch_size` 1, `epoch` 0, one worker, unbound, prefetch 4,
    /// no pre-gather).
    pub fn builder(
        graph: Arc<Graph>,
        sampler: Arc<dyn Sampler>,
        seeds: Arc<Vec<NodeId>>,
    ) -> LoaderSpecBuilder {
        LoaderSpecBuilder {
            spec: LoaderSpec {
                graph,
                sampler,
                seeds,
                batch_size: 1,
                epoch: 0,
                epoch_seeds: SeedSequence::new(0),
                n_samp: 1,
                cores: CoreSet::default(),
                prefetch: 4,
                features: None,
                cache: None,
                normalization: Normalization::None,
                samp_pool: 1,
                spans: None,
            },
        }
    }
}

/// Builder for [`LoaderSpec`]; see [`LoaderSpec::builder`].
pub struct LoaderSpecBuilder {
    spec: LoaderSpec,
}

impl LoaderSpecBuilder {
    /// Local batch size.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.spec.batch_size = batch_size;
        self
    }

    /// Epoch number.
    pub fn epoch(mut self, epoch: u64) -> Self {
        self.spec.epoch = epoch;
        self
    }

    /// Per-process seed stream.
    pub fn epoch_seeds(mut self, epoch_seeds: SeedSequence) -> Self {
        self.spec.epoch_seeds = epoch_seeds;
        self
    }

    /// Number of sampler threads.
    pub fn n_samp(mut self, n_samp: usize) -> Self {
        self.spec.n_samp = n_samp;
        self
    }

    /// Sampling cores to bind to.
    pub fn cores(mut self, cores: CoreSet) -> Self {
        self.spec.cores = cores;
        self
    }

    /// Prefetch channel capacity.
    pub fn prefetch(mut self, prefetch: usize) -> Self {
        self.spec.prefetch = prefetch;
        self
    }

    /// Enables worker-side feature pre-gathering.
    pub fn features(mut self, features: Arc<Features>) -> Self {
        self.spec.features = Some(features);
        self
    }

    /// Routes pre-gathering through a shared cross-batch cache.
    pub fn cache(mut self, cache: Arc<FeatureCache>) -> Self {
        self.spec.cache = Some(cache);
        self
    }

    /// Fused normalization written into each batch's adjacency values.
    pub fn normalization(mut self, normalization: Normalization) -> Self {
        self.spec.normalization = normalization;
        self
    }

    /// Within-batch sampling parallelism (1 = off).
    pub fn samp_pool(mut self, samp_pool: usize) -> Self {
        self.spec.samp_pool = samp_pool;
        self
    }

    /// Attaches a causal span profiler.
    pub fn spans(mut self, spans: Arc<SpanProfiler>) -> Self {
        self.spec.spans = Some(spans);
        self
    }

    /// Finalizes the spec.
    pub fn build(self) -> LoaderSpec {
        self.spec
    }

    /// Shorthand for `PipelinedLoader::start(self.build())`.
    pub fn start(self) -> PipelinedLoader {
        PipelinedLoader::start(self.build())
    }
}

/// One sampled (and possibly pre-gathered) mini-batch.
pub struct LoadedBatch {
    /// The sampled computation structure.
    pub batch: SampledBatch,
    /// Input-node feature rows, pre-gathered on the sampling side. `None`
    /// when the spec carried no features.
    pub input: Option<Matrix>,
    /// Wall-clock seconds the worker spent gathering `input` (0 when no
    /// pre-gather happened).
    pub gather_seconds: f64,
    /// Scratch-arena allocations this batch charged to the producing
    /// worker's [`SamplerScratch`] (0 once the arena is warm).
    pub scratch_allocs: u64,
    /// Bytes of batch metadata in the compact arena-CSR layout (node ids,
    /// degrees, `u32` row pointers, column indices, fused values), measured
    /// on the borrowed view before the reorder-channel handoff materialized
    /// this owned copy.
    pub metadata_bytes: u64,
}

struct Indexed {
    index: usize,
    batch: LoadedBatch,
}

impl PartialEq for Indexed {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}
impl Eq for Indexed {}
impl PartialOrd for Indexed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Indexed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.index.cmp(&self.index) // min-heap on index
    }
}

/// Prefetching mini-batch loader. Iterate it to receive
/// `(batch_index, LoadedBatch)` in index order.
pub struct PipelinedLoader {
    rx: Receiver<Indexed>,
    reorder: BinaryHeap<Indexed>,
    next: usize,
    total: usize,
    ring: Arc<WorkerRing>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl PipelinedLoader {
    /// Starts `spec.n_samp` sampler threads producing all batches of one
    /// epoch.
    pub fn start(spec: LoaderSpec) -> Self {
        let LoaderSpec {
            graph,
            sampler,
            seeds,
            batch_size,
            epoch,
            epoch_seeds,
            n_samp,
            cores,
            prefetch,
            features,
            cache,
            normalization,
            samp_pool,
            spans,
        } = spec;
        assert!(batch_size > 0 && n_samp > 0 && samp_pool > 0);
        let total = seeds.len().div_ceil(batch_size);
        let (tx, rx) = bounded::<Indexed>(prefetch.max(1));
        let cursor = Arc::new(AtomicUsize::new(0));
        let consumer_ring = match &spans {
            Some(p) => p.ring(Role::Consumer),
            None => Arc::new(WorkerRing::detached()),
        };
        let mut workers = Vec::with_capacity(n_samp);
        for w in 0..n_samp {
            let graph = Arc::clone(&graph);
            let sampler = Arc::clone(&sampler);
            let seeds = Arc::clone(&seeds);
            let cursor = Arc::clone(&cursor);
            let features = features.clone();
            let cache = cache.clone();
            let tx = tx.clone();
            let ring = match &spans {
                Some(p) => p.ring(Role::Producer),
                None => Arc::new(WorkerRing::detached()),
            };
            let my_core = if cores.is_empty() {
                None
            } else {
                Some(CoreSet::new(vec![cores.ids()[w % cores.len()]]))
            };
            let pool_cores = cores.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("argo-sampler-{w}"))
                    .spawn(move || {
                        if let Some(c) = &my_core {
                            let _ = bind_current_thread(c);
                        }
                        // Per-worker persistent state: the scratch arena is
                        // warm after the first batch, and the within-batch
                        // pool (when enabled) spans the sampling core set.
                        let mut scratch = SamplerScratch::new();
                        let pool = (samp_pool > 1).then(|| {
                            if pool_cores.is_empty() {
                                ThreadPool::new("argo-samp", samp_pool)
                            } else {
                                ThreadPool::pinned("argo-samp", &pool_cores)
                            }
                        });
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= total {
                                break;
                            }
                            let lo = i * batch_size;
                            let hi = ((i + 1) * batch_size).min(seeds.len());
                            let stream = SeedSequence::new(epoch_seeds.seed_for(epoch, i as u64));
                            let allocs_before = scratch.allocs();
                            let pick = ring.span_begin(SpanKind::Pick, i as u64);
                            let run = SampleRun::new(stream, &mut scratch)
                                .with_norm(normalization)
                                .with_pool(pool.as_ref());
                            // Assemble in the scratch arena, account the
                            // compact metadata footprint, then materialize
                            // the owned copy the reorder channel requires
                            // (the sanctioned ownership boundary).
                            let view = sampler.sample_into(&graph, &seeds[lo..hi], run);
                            let metadata_bytes = view.metadata_bytes() as u64;
                            let batch = view.to_owned();
                            ring.span_end(pick);
                            let scratch_allocs = scratch.allocs() - allocs_before;
                            let (input, gather_seconds) = match &features {
                                Some(f) => {
                                    let t0 = Instant::now();
                                    let ids = batch.input_nodes();
                                    let kind = if cache.is_some() {
                                        SpanKind::Cache
                                    } else {
                                        SpanKind::Gather
                                    };
                                    let span = ring.span_begin(kind, i as u64);
                                    let rows = match &cache {
                                        Some(c) => c.gather_rows(f, ids),
                                        None => f.gather(ids).data().to_vec(),
                                    };
                                    let m = Matrix::from_vec(ids.len(), f.dim(), rows);
                                    ring.span_end(span);
                                    (Some(m), t0.elapsed().as_secs_f64())
                                }
                                None => (None, 0.0),
                            };
                            let loaded = LoadedBatch {
                                batch,
                                input,
                                gather_seconds,
                                scratch_allocs,
                                metadata_bytes,
                            };
                            // The enqueue-wait span measures backpressure:
                            // time blocked on a full prefetch channel.
                            let enq = ring.span_begin(SpanKind::EnqueueWait, i as u64);
                            let sent = tx
                                .send(Indexed {
                                    index: i,
                                    batch: loaded,
                                })
                                .is_ok();
                            ring.span_end(enq);
                            if !sent {
                                break; // consumer dropped
                            }
                        }
                    })
                    .expect("spawn sampler"),
            );
        }
        Self {
            rx,
            reorder: BinaryHeap::new(),
            next: 0,
            total,
            ring: consumer_ring,
            workers,
        }
    }

    /// Number of batches this epoch will produce.
    pub fn num_batches(&self) -> usize {
        self.total
    }
}

impl Iterator for PipelinedLoader {
    type Item = (usize, LoadedBatch);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.total {
            return None;
        }
        // The dequeue-wait span covers both the channel recv and the
        // reorder-heap stall for the in-order batch, so the critical-path
        // attribution can tell "producers too slow" from "heap reordering".
        let wait = self
            .ring
            .span_begin(SpanKind::DequeueWait, self.next as u64);
        let item = self.advance();
        self.ring.span_end(wait);
        item
    }
}

impl PipelinedLoader {
    fn advance(&mut self) -> Option<(usize, LoadedBatch)> {
        loop {
            // pop-if: take the heap top only when it is the batch the
            // consumer is waiting for (avoids a peek-then-unwrap pair).
            if self
                .reorder
                .peek()
                .is_some_and(|top| top.index == self.next)
            {
                if let Some(item) = self.reorder.pop() {
                    self.next += 1;
                    return Some((item.index, item.batch));
                }
            }
            match self.rx.recv() {
                Ok(item) => self.reorder.push(item),
                Err(_) => return None, // workers gone with batches missing
            }
        }
    }
}

impl Drop for PipelinedLoader {
    fn drop(&mut self) {
        // Unblock producers waiting on a full channel, then join.
        while self.rx.try_recv().is_ok() {}
        drop(std::mem::replace(&mut self.rx, bounded(1).1));
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor::NeighborSampler;
    use argo_graph::generators::power_law;

    fn setup() -> (Arc<Graph>, Arc<dyn Sampler>, Arc<Vec<NodeId>>) {
        let g = Arc::new(power_law(500, 5000, 0.8, 1));
        let s: Arc<dyn Sampler> = Arc::new(NeighborSampler::new(vec![5, 3]));
        let seeds: Arc<Vec<NodeId>> = Arc::new((0..100).collect());
        (g, s, seeds)
    }

    #[test]
    fn yields_all_batches_in_order() {
        let (g, s, seeds) = setup();
        let loader = LoaderSpec::builder(g, s, seeds)
            .batch_size(16)
            .epoch_seeds(SeedSequence::new(42))
            .n_samp(3)
            .start();
        assert_eq!(loader.num_batches(), 7);
        let idxs: Vec<usize> = loader.map(|(i, _)| i).collect();
        assert_eq!(idxs, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn batch_content_independent_of_worker_count() {
        // Neither the number of sampler threads nor the within-batch pool
        // width may change what gets sampled: batch i of epoch e is a pure
        // function of (epoch_seeds, e, i).
        let (g, s, seeds) = setup();
        let run = |n_samp: usize, samp_pool: usize| -> Vec<Vec<NodeId>> {
            LoaderSpec::builder(Arc::clone(&g), Arc::clone(&s), Arc::clone(&seeds))
                .batch_size(10)
                .epoch(3)
                .epoch_seeds(SeedSequence::new(7))
                .n_samp(n_samp)
                .samp_pool(samp_pool)
                .prefetch(2)
                .start()
                .map(|(_, b)| b.batch.input_nodes().to_vec())
                .collect()
        };
        let reference = run(1, 1);
        assert_eq!(reference, run(4, 1));
        assert_eq!(reference, run(1, 2));
        assert_eq!(reference, run(1, 4));
        assert_eq!(reference, run(2, 2));
    }

    #[test]
    fn steady_state_sampling_is_allocation_free() {
        // The scratch arena warms up on the first batch; after that the
        // worker loop charges zero allocations for sampler metadata. Every
        // batch here has identical seed content (nodes 0..16), so the warm
        // arena is provably large enough for all later batches.
        let g = Arc::new(power_law(500, 5000, 0.8, 1));
        let s: Arc<dyn Sampler> = Arc::new(NeighborSampler::new(vec![5, 3]));
        let seeds: Arc<Vec<NodeId>> = Arc::new((0..12).flat_map(|_| 0..16).collect());
        let allocs: Vec<u64> = LoaderSpec::builder(g, s, seeds)
            .batch_size(16)
            .epoch_seeds(SeedSequence::new(11))
            .normalization(Normalization::Gcn)
            .n_samp(1)
            .start()
            .map(|(_, b)| b.scratch_allocs)
            .collect();
        assert_eq!(allocs.len(), 12);
        assert!(allocs[0] > 0, "first batch must warm the arena: {allocs:?}");
        assert!(
            allocs[1..].iter().all(|&a| a == 0),
            "steady state must not allocate: {allocs:?}"
        );
    }

    #[test]
    fn last_batch_is_short() {
        let (g, s, _) = setup();
        let seeds: Arc<Vec<NodeId>> = Arc::new((0..25).collect());
        let loader = LoaderSpec::builder(g, s, seeds)
            .batch_size(10)
            .epoch_seeds(SeedSequence::new(1))
            .n_samp(2)
            .prefetch(2)
            .start();
        let sizes: Vec<usize> = loader.map(|(_, b)| b.batch.num_seeds()).collect();
        assert_eq!(sizes, vec![10, 10, 5]);
    }

    #[test]
    fn early_drop_does_not_hang() {
        let (g, s, seeds) = setup();
        let mut loader = LoaderSpec::builder(g, s, seeds)
            .batch_size(4)
            .epoch_seeds(SeedSequence::new(5))
            .n_samp(2)
            .prefetch(1)
            .start();
        let _ = loader.next();
        drop(loader); // must join cleanly even with batches unconsumed
    }

    #[test]
    fn different_epochs_differ() {
        let (g, s, seeds) = setup();
        let collect = |epoch: u64| -> Vec<Vec<NodeId>> {
            LoaderSpec::builder(Arc::clone(&g), Arc::clone(&s), Arc::clone(&seeds))
                .batch_size(10)
                .epoch(epoch)
                .epoch_seeds(SeedSequence::new(7))
                .n_samp(2)
                .prefetch(2)
                .start()
                .map(|(_, b)| b.batch.input_nodes().to_vec())
                .collect()
        };
        assert_ne!(collect(0), collect(1));
    }

    #[test]
    fn pre_gathered_input_matches_direct_gather() {
        // With features in the spec — cached or not — every yielded batch
        // carries input rows bitwise identical to Features::gather.
        let (g, s, seeds) = setup();
        let feats = Arc::new(Features::new(
            (0..500 * 4).map(|x| x as f32 * 0.01).collect(),
            4,
        ));
        let run = |cache: Option<Arc<FeatureCache>>| {
            let mut b = LoaderSpec::builder(Arc::clone(&g), Arc::clone(&s), Arc::clone(&seeds))
                .batch_size(16)
                .epoch_seeds(SeedSequence::new(9))
                .n_samp(3)
                .features(Arc::clone(&feats));
            if let Some(c) = cache {
                b = b.cache(c);
            }
            for (_, lb) in b.start() {
                let input = lb.input.expect("features requested");
                assert_eq!(input.data(), feats.gather(lb.batch.input_nodes()).data());
                assert!(lb.gather_seconds >= 0.0);
            }
        };
        run(None);
        let cache = Arc::new(FeatureCache::new(200, 4));
        run(Some(Arc::clone(&cache)));
        let stats = cache.stats();
        assert!(stats.lookups() > 0);
    }

    #[test]
    fn without_features_input_is_none() {
        let (g, s, seeds) = setup();
        let loader = LoaderSpec::builder(g, s, seeds)
            .batch_size(50)
            .epoch_seeds(SeedSequence::new(2))
            .start();
        for (_, lb) in loader {
            assert!(lb.input.is_none());
            assert_eq!(lb.gather_seconds, 0.0);
        }
    }

    #[test]
    fn profiler_records_one_span_chain_per_batch() {
        let (g, s, seeds) = setup();
        let feats = Arc::new(Features::new(
            (0..500 * 4).map(|x| x as f32 * 0.01).collect(),
            4,
        ));
        let prof = Arc::new(SpanProfiler::new());
        let loader = LoaderSpec::builder(g, s, seeds)
            .batch_size(16)
            .epoch_seeds(SeedSequence::new(11))
            .n_samp(2)
            .features(feats)
            .spans(Arc::clone(&prof))
            .start();
        let n = loader.num_batches();
        let got: Vec<_> = loader.collect();
        assert_eq!(got.len(), n);
        let drained = prof.drain();
        assert_eq!(drained.dropped, 0);
        let count = |role: Role, kind: SpanKind| {
            drained
                .records
                .iter()
                .filter(|r| r.role == role && r.kind == kind)
                .count()
        };
        // One pick, one gather, one enqueue wait per batch on the producer
        // side; one dequeue wait per batch on the consumer side — each
        // keyed by the batch id so the chain is linkable.
        assert_eq!(count(Role::Producer, SpanKind::Pick), n);
        assert_eq!(count(Role::Producer, SpanKind::Gather), n);
        assert_eq!(count(Role::Producer, SpanKind::EnqueueWait), n);
        assert_eq!(count(Role::Consumer, SpanKind::DequeueWait), n);
        let mut picked: Vec<u64> = drained
            .records
            .iter()
            .filter(|r| r.kind == SpanKind::Pick)
            .map(|r| r.batch)
            .collect();
        picked.sort_unstable();
        assert_eq!(picked, (0..n as u64).collect::<Vec<_>>());
    }

    #[test]
    fn no_profiler_records_nothing() {
        let (g, s, seeds) = setup();
        let loader = LoaderSpec::builder(g, s, seeds)
            .batch_size(32)
            .epoch_seeds(SeedSequence::new(3))
            .start();
        assert_eq!(loader.count(), 4);
    }
}
