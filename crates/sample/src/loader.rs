//! Pipelined mini-batch loading: sampling overlapped with training.
//!
//! State-of-the-art GNN libraries overlap mini-batch sampling with model
//! propagation (paper Section V-A2); ARGO's auto-tuner decides how many
//! cores each side gets. [`PipelinedLoader`] implements the sampling side:
//! `n_samp` sampler threads (bound to the process's *sampling cores*)
//! prefetch batches into a bounded channel while the training thread
//! consumes them **in deterministic batch order** — batch `i` of epoch `e`
//! is always drawn from RNG seed `seed_for(e, i)` regardless of which worker
//! produced it, so pipelining never perturbs training semantics.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use argo_graph::{Graph, NodeId};
use argo_rt::affinity::{bind_current_thread, CoreSet};
use argo_rt::SeedSequence;
use crossbeam::channel::{bounded, Receiver};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::batch::SampledBatch;
use crate::Sampler;

struct Indexed {
    index: usize,
    batch: SampledBatch,
}

impl PartialEq for Indexed {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}
impl Eq for Indexed {}
impl PartialOrd for Indexed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Indexed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.index.cmp(&self.index) // min-heap on index
    }
}

/// Prefetching mini-batch loader. Iterate it to receive
/// `(batch_index, SampledBatch)` in index order.
pub struct PipelinedLoader {
    rx: Receiver<Indexed>,
    reorder: BinaryHeap<Indexed>,
    next: usize,
    total: usize,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl PipelinedLoader {
    /// Starts `n_samp` sampler threads producing all batches of one epoch.
    ///
    /// * `seeds` — this process's training targets (already partitioned).
    /// * `batch_size` — local batch size (global batch / number of
    ///   processes, per the Multi-Process Engine).
    /// * `epoch_seeds` — the [`SeedSequence`] child for this process;
    ///   batch `i` of epoch `epoch` uses `epoch_seeds.seed_for(epoch, i)`.
    /// * `cores` — sampling cores to bind the workers to (empty = unbound).
    /// * `prefetch` — channel capacity (bounds memory).
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        graph: Arc<Graph>,
        sampler: Arc<dyn Sampler>,
        seeds: Arc<Vec<NodeId>>,
        batch_size: usize,
        epoch: u64,
        epoch_seeds: SeedSequence,
        n_samp: usize,
        cores: CoreSet,
        prefetch: usize,
    ) -> Self {
        assert!(batch_size > 0 && n_samp > 0);
        let total = seeds.len().div_ceil(batch_size);
        let (tx, rx) = bounded::<Indexed>(prefetch.max(1));
        let cursor = Arc::new(AtomicUsize::new(0));
        let mut workers = Vec::with_capacity(n_samp);
        for w in 0..n_samp {
            let graph = Arc::clone(&graph);
            let sampler = Arc::clone(&sampler);
            let seeds = Arc::clone(&seeds);
            let cursor = Arc::clone(&cursor);
            let tx = tx.clone();
            let my_core = if cores.is_empty() {
                None
            } else {
                Some(CoreSet::new(vec![cores.ids()[w % cores.len()]]))
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("argo-sampler-{w}"))
                    .spawn(move || {
                        if let Some(c) = &my_core {
                            let _ = bind_current_thread(c);
                        }
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= total {
                                break;
                            }
                            let lo = i * batch_size;
                            let hi = ((i + 1) * batch_size).min(seeds.len());
                            let mut rng =
                                SmallRng::seed_from_u64(epoch_seeds.seed_for(epoch, i as u64));
                            let batch = sampler.sample(&graph, &seeds[lo..hi], &mut rng);
                            if tx.send(Indexed { index: i, batch }).is_err() {
                                break; // consumer dropped
                            }
                        }
                    })
                    .expect("spawn sampler"),
            );
        }
        Self {
            rx,
            reorder: BinaryHeap::new(),
            next: 0,
            total,
            workers,
        }
    }

    /// Number of batches this epoch will produce.
    pub fn num_batches(&self) -> usize {
        self.total
    }
}

impl Iterator for PipelinedLoader {
    type Item = (usize, SampledBatch);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.total {
            return None;
        }
        loop {
            if let Some(top) = self.reorder.peek() {
                if top.index == self.next {
                    let item = self.reorder.pop().unwrap();
                    self.next += 1;
                    return Some((item.index, item.batch));
                }
            }
            match self.rx.recv() {
                Ok(item) => self.reorder.push(item),
                Err(_) => return None, // workers gone with batches missing
            }
        }
    }
}

impl Drop for PipelinedLoader {
    fn drop(&mut self) {
        // Unblock producers waiting on a full channel, then join.
        while self.rx.try_recv().is_ok() {}
        drop(std::mem::replace(&mut self.rx, bounded(1).1));
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor::NeighborSampler;
    use argo_graph::generators::power_law;

    fn setup() -> (Arc<Graph>, Arc<dyn Sampler>, Arc<Vec<NodeId>>) {
        let g = Arc::new(power_law(500, 5000, 0.8, 1));
        let s: Arc<dyn Sampler> = Arc::new(NeighborSampler::new(vec![5, 3]));
        let seeds: Arc<Vec<NodeId>> = Arc::new((0..100).collect());
        (g, s, seeds)
    }

    #[test]
    fn yields_all_batches_in_order() {
        let (g, s, seeds) = setup();
        let loader = PipelinedLoader::start(
            g,
            s,
            seeds,
            16,
            0,
            SeedSequence::new(42),
            3,
            CoreSet::default(),
            4,
        );
        assert_eq!(loader.num_batches(), 7);
        let idxs: Vec<usize> = loader.map(|(i, _)| i).collect();
        assert_eq!(idxs, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn batch_content_independent_of_worker_count() {
        let (g, s, seeds) = setup();
        let run = |n_samp: usize| -> Vec<Vec<NodeId>> {
            PipelinedLoader::start(
                Arc::clone(&g),
                Arc::clone(&s),
                Arc::clone(&seeds),
                10,
                3,
                SeedSequence::new(7),
                n_samp,
                CoreSet::default(),
                2,
            )
            .map(|(_, b)| b.input_nodes().to_vec())
            .collect()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn last_batch_is_short() {
        let (g, s, _) = setup();
        let seeds: Arc<Vec<NodeId>> = Arc::new((0..25).collect());
        let loader = PipelinedLoader::start(
            g,
            s,
            seeds,
            10,
            0,
            SeedSequence::new(1),
            2,
            CoreSet::default(),
            2,
        );
        let sizes: Vec<usize> = loader.map(|(_, b)| b.num_seeds()).collect();
        assert_eq!(sizes, vec![10, 10, 5]);
    }

    #[test]
    fn early_drop_does_not_hang() {
        let (g, s, seeds) = setup();
        let mut loader = PipelinedLoader::start(
            g,
            s,
            seeds,
            4,
            0,
            SeedSequence::new(5),
            2,
            CoreSet::default(),
            1,
        );
        let _ = loader.next();
        drop(loader); // must join cleanly even with batches unconsumed
    }

    #[test]
    fn different_epochs_differ() {
        let (g, s, seeds) = setup();
        let collect = |epoch: u64| -> Vec<Vec<NodeId>> {
            PipelinedLoader::start(
                Arc::clone(&g),
                Arc::clone(&s),
                Arc::clone(&seeds),
                10,
                epoch,
                SeedSequence::new(7),
                2,
                CoreSet::default(),
                2,
            )
            .map(|(_, b)| b.input_nodes().to_vec())
            .collect()
        };
        assert_ne!(collect(0), collect(1));
    }
}
