//! Per-batch workload statistics (paper Figures 5–6).
//!
//! The paper measures "workload" as the number of sampled edges, because the
//! number of aggregations is proportional to it, and shows that splitting a
//! mini-batch across more processes *increases* total workload: smaller
//! batches share fewer neighbors, so shared aggregation results are
//! recomputed (Figure 5). These helpers measure that effect on real sampled
//! batches.

use argo_graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::batch::SampledBatch;
use crate::Sampler;

/// Aggregate workload counters for a set of sampled batches.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkloadStats {
    /// Total sampled edges (aggregation workload).
    pub edges: usize,
    /// Total input nodes whose features are gathered (bandwidth workload).
    pub input_nodes: usize,
    /// Number of batches.
    pub batches: usize,
}

impl WorkloadStats {
    /// Accumulates one batch.
    pub fn add(&mut self, batch: &SampledBatch, num_layers: usize) {
        self.edges += batch.total_edges(num_layers);
        self.input_nodes += batch.input_nodes().len();
        self.batches += 1;
    }
}

/// Measures one batch.
pub fn batch_workload(batch: &SampledBatch, num_layers: usize) -> WorkloadStats {
    let mut s = WorkloadStats::default();
    s.add(batch, num_layers);
    s
}

/// Samples one full epoch of `seeds` split across `n_proc` processes (each
/// process gets `1/n_proc` of the seeds and uses batch size
/// `global_batch / n_proc`, per the Multi-Process Engine's semantics) and
/// returns the total workload — the quantity plotted in Figure 6.
pub fn epoch_workload(
    graph: &Graph,
    sampler: &dyn Sampler,
    seeds: &[NodeId],
    global_batch: usize,
    n_proc: usize,
    seed: u64,
) -> WorkloadStats {
    assert!(n_proc > 0 && global_batch > 0);
    let local_batch = (global_batch / n_proc).max(1);
    let parts = argo_graph::partition::random_partition(seeds, n_proc, seed);
    let mut stats = WorkloadStats::default();
    for (rank, part) in parts.iter().enumerate() {
        let mut rng = SmallRng::seed_from_u64(seed ^ (rank as u64).wrapping_mul(0x9E3779B9));
        for chunk in part.chunks(local_batch) {
            let batch = sampler.sample(graph, chunk, &mut rng);
            stats.add(&batch, sampler.num_layers());
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor::NeighborSampler;
    use argo_graph::generators::power_law;

    #[test]
    fn workload_grows_with_process_count() {
        // The Figure-6 effect: more processes → smaller per-process batches →
        // fewer shared neighbors → more total edges.
        let g = power_law(3000, 60000, 0.75, 3);
        let seeds: Vec<NodeId> = (0..1024).collect();
        let sampler = NeighborSampler::new(vec![15, 10, 5]);
        let w1 = epoch_workload(&g, &sampler, &seeds, 1024, 1, 7);
        let w8 = epoch_workload(&g, &sampler, &seeds, 1024, 8, 7);
        assert!(
            w8.edges > w1.edges,
            "8-proc edges {} should exceed 1-proc edges {}",
            w8.edges,
            w1.edges
        );
        assert!(w8.input_nodes > w1.input_nodes);
    }

    #[test]
    fn batches_counted() {
        let g = power_law(500, 5000, 0.8, 1);
        let seeds: Vec<NodeId> = (0..100).collect();
        let sampler = NeighborSampler::new(vec![5]);
        let w = epoch_workload(&g, &sampler, &seeds, 20, 2, 1);
        // 2 procs × (50 seeds / 10 per local batch) = 10 batches.
        assert_eq!(w.batches, 10);
    }

    #[test]
    fn stats_add_accumulates() {
        let g = power_law(200, 2000, 0.8, 2);
        let sampler = NeighborSampler::new(vec![3]);
        let mut rng = SmallRng::seed_from_u64(1);
        let b = sampler.sample(&g, &[1, 2, 3], &mut rng);
        let mut s = WorkloadStats::default();
        s.add(&b, 1);
        s.add(&b, 1);
        let single = batch_workload(&b, 1);
        assert_eq!(s.edges, 2 * single.edges);
        assert_eq!(s.batches, 2);
    }
}
