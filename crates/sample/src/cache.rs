//! Cross-batch neighborhood feature cache.
//!
//! Figure 5's observation — consecutive mini-batches share heavily-reused
//! neighborhoods — means the gather stage re-reads the same feature rows
//! over and over. [`FeatureCache`] is a sharded, bounded cache keyed by
//! [`NodeId`] that holds gathered feature rows across batches, consulted by
//! [`PipelinedLoader`](crate::PipelinedLoader) workers before touching
//! [`Features::gather`]. Eviction is CLOCK / second-chance — an
//! LRU-with-frequency approximation whose per-hit cost is one atomic-free
//! counter bump under the shard lock, so hot rows (shared neighbors) stick
//! while cold rows cycle out.
//!
//! Cached and uncached gathers are **bitwise identical**: rows are copied
//! verbatim, so enabling the cache never perturbs training semantics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use argo_graph::{Features, NodeId};
use parking_lot::Mutex;

/// Reference-count ceiling: a row needs this many consecutive CLOCK sweeps
/// without a hit before it becomes an eviction candidate.
const MAX_FREQ: u8 = 3;

/// Point-in-time cache counters (cumulative since construction unless
/// produced by [`CacheStats::delta`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the backing [`Features`].
    pub misses: u64,
    /// Rows displaced by CLOCK second-chance eviction.
    pub evictions: u64,
    /// Rows currently resident.
    pub resident_rows: u64,
    /// Maximum rows the cache may hold.
    pub capacity_rows: u64,
    /// Bytes of feature data currently resident.
    pub bytes: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }

    /// Counters accumulated since `earlier` (a prior snapshot of the same
    /// cache); occupancy fields are carried from `self`.
    pub fn delta(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            resident_rows: self.resident_rows,
            capacity_rows: self.capacity_rows,
            bytes: self.bytes,
        }
    }
}

struct Slot {
    node: NodeId,
    freq: u8,
    row: Box<[f32]>,
}

struct Shard {
    map: HashMap<NodeId, usize>,
    slots: Vec<Slot>,
    hand: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            hand: 0,
            capacity,
        }
    }

    /// Copies `v`'s row into `out` if resident, bumping its frequency.
    fn get(&mut self, v: NodeId, out: &mut [f32]) -> bool {
        match self.map.get(&v) {
            Some(&i) => {
                let slot = &mut self.slots[i];
                slot.freq = (slot.freq + 1).min(MAX_FREQ);
                out.copy_from_slice(&slot.row);
                true
            }
            None => false,
        }
    }

    /// Inserts `v`'s row, evicting via CLOCK when full. Returns whether an
    /// eviction happened.
    fn insert(&mut self, v: NodeId, row: &[f32]) -> bool {
        if self.capacity == 0 || self.map.contains_key(&v) {
            return false; // no room, or raced in by a concurrent miss
        }
        if self.slots.len() < self.capacity {
            self.map.insert(v, self.slots.len());
            self.slots.push(Slot {
                node: v,
                freq: 1,
                row: row.into(),
            });
            return false;
        }
        // CLOCK sweep: decrement second-chance counters until a victim with
        // freq 0 comes under the hand. Terminates within MAX_FREQ+1 laps.
        loop {
            let slot = &mut self.slots[self.hand];
            if slot.freq == 0 {
                self.map.remove(&slot.node);
                self.map.insert(v, self.hand);
                *slot = Slot {
                    node: v,
                    freq: 1,
                    row: row.into(),
                };
                self.hand = (self.hand + 1) % self.slots.len();
                return true;
            }
            slot.freq -= 1;
            self.hand = (self.hand + 1) % self.slots.len();
        }
    }
}

/// Sharded, bounded, CLOCK-evicting cache of gathered feature rows.
///
/// Thread-safe: lookups and insertions take only the shard lock for the key
/// in question, so concurrent [`PipelinedLoader`](crate::PipelinedLoader)
/// workers proceed mostly in parallel. Hit/miss/eviction counters are
/// atomics read via [`FeatureCache::stats`].
pub struct FeatureCache {
    shards: Vec<Mutex<Shard>>,
    dim: usize,
    capacity_rows: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl FeatureCache {
    /// A cache holding up to `capacity_rows` rows of `dim` floats, sharded
    /// for concurrent access. Small caches get fewer shards so per-shard
    /// capacity stays useful (≥ 8 rows per shard, up to 16 shards).
    pub fn new(capacity_rows: usize, dim: usize) -> Self {
        Self::with_shards(capacity_rows, dim, (capacity_rows / 8).clamp(1, 16))
    }

    /// Like [`FeatureCache::new`] with an explicit shard count (use 1 for
    /// deterministic eviction-order tests).
    pub fn with_shards(capacity_rows: usize, dim: usize, n_shards: usize) -> Self {
        assert!(dim > 0, "feature dim must be positive");
        assert!(n_shards > 0, "need at least one shard");
        let base = capacity_rows / n_shards;
        let extra = capacity_rows % n_shards;
        let shards = (0..n_shards)
            .map(|i| Mutex::new(Shard::new(base + usize::from(i < extra))))
            .collect();
        Self {
            shards,
            dim,
            capacity_rows,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum number of rows the cache may hold.
    pub fn capacity_rows(&self) -> usize {
        self.capacity_rows
    }

    /// Feature dimension of cached rows.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn shard_of(&self, v: NodeId) -> usize {
        // Fibonacci multiplicative hash: spreads consecutive node ids.
        let h = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) % self.shards.len()
    }

    /// Gathers rows `ids` from `feats` through the cache into a row-major
    /// `ids.len() x dim` buffer — bitwise identical to
    /// `feats.gather(ids)`. Hits are copied out of the cache; misses are
    /// filled from `feats` in one partitioned pass and then inserted.
    pub fn gather_rows(&self, feats: &Features, ids: &[NodeId]) -> Vec<f32> {
        assert_eq!(feats.dim(), self.dim, "feature dim mismatch");
        let d = self.dim;
        let mut out = vec![0.0f32; ids.len() * d];
        let mut missed: Vec<usize> = Vec::new();
        // Each shard lock is taken once per batch, not once per row: group
        // the positions by shard, then walk each group under one guard.
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (p, &v) in ids.iter().enumerate() {
            by_shard[self.shard_of(v)].push(p);
        }
        for (s, positions) in by_shard.iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let mut shard = self.shards[s].lock();
            for &p in positions {
                if !shard.get(ids[p], &mut out[p * d..(p + 1) * d]) {
                    missed.push(p);
                }
            }
        }
        missed.sort_unstable(); // restore position order for sequential fill
        self.hits
            .fetch_add((ids.len() - missed.len()) as u64, Ordering::Relaxed);
        self.misses
            .fetch_add(missed.len() as u64, Ordering::Relaxed);
        // Zero-copy partition fill: only the missed positions touch the
        // backing store.
        feats.fill_rows(ids, &missed, &mut out);
        let mut evicted = 0u64;
        // Reuse the shard grouping for insertion, again one lock per shard.
        for positions in by_shard.iter_mut() {
            positions.retain(|p| missed.binary_search(p).is_ok());
        }
        let miss_by_shard = by_shard;
        for (s, positions) in miss_by_shard.iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let mut shard = self.shards[s].lock();
            for &p in positions {
                if shard.insert(ids[p], &out[p * d..(p + 1) * d]) {
                    evicted += 1;
                }
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        out
    }

    /// [`FeatureCache::gather_rows`] packaged as a [`Features`] matrix.
    pub fn gather(&self, feats: &Features, ids: &[NodeId]) -> Features {
        Features::new(self.gather_rows(feats, ids), self.dim)
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let resident: usize = self.shards.iter().map(|s| s.lock().slots.len()).sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_rows: resident as u64,
            capacity_rows: self.capacity_rows as u64,
            bytes: (resident * self.dim * std::mem::size_of::<f32>()) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor::NeighborSampler;
    use crate::Sampler;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn feats(n: usize, dim: usize) -> Features {
        Features::new((0..n * dim).map(|x| x as f32 * 0.25 - 3.0).collect(), dim)
    }

    #[test]
    fn hits_after_first_gather() {
        let f = feats(10, 4);
        let c = FeatureCache::new(10, 4);
        let a = c.gather_rows(&f, &[1, 2, 3]);
        let b = c.gather_rows(&f, &[1, 2, 3]);
        assert_eq!(a, b);
        let s = c.stats();
        assert_eq!(s.misses, 3);
        assert_eq!(s.hits, 3);
        assert_eq!(s.evictions, 0);
        assert_eq!(s.resident_rows, 3);
        assert_eq!(s.bytes, 3 * 4 * 4);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clock_evicts_cold_row_before_hot_row() {
        // Capacity 2, one shard for determinism. A is touched twice (hot),
        // B once (cold); inserting C must displace B.
        let f = feats(10, 2);
        let c = FeatureCache::with_shards(2, 2, 1);
        c.gather_rows(&f, &[0, 1]); // A=0, B=1 resident
        c.gather_rows(&f, &[0]); // A hot
        c.gather_rows(&f, &[2]); // C evicts the cold row
        assert_eq!(c.stats().evictions, 1);
        c.gather_rows(&f, &[0]); // A survived
        assert_eq!(c.stats().hits, 2);
        c.gather_rows(&f, &[1]); // B was the victim
        assert_eq!(c.stats().misses, 4);
    }

    #[test]
    fn eviction_keeps_occupancy_at_capacity() {
        let f = feats(64, 3);
        let c = FeatureCache::with_shards(8, 3, 2);
        for start in 0..32u32 {
            c.gather_rows(&f, &[start, start + 16]);
        }
        let s = c.stats();
        assert!(s.resident_rows <= 8);
        assert!(s.evictions > 0);
        assert_eq!(s.bytes, s.resident_rows * 3 * 4);
    }

    #[test]
    fn zero_capacity_cache_is_a_pure_passthrough() {
        let f = feats(6, 2);
        let c = FeatureCache::new(0, 2);
        assert_eq!(c.gather_rows(&f, &[5, 0]), f.gather(&[5, 0]).data());
        let s = c.stats();
        assert_eq!((s.hits, s.resident_rows), (0, 0));
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn delta_isolates_one_epoch() {
        let f = feats(8, 2);
        let c = FeatureCache::new(8, 2);
        c.gather_rows(&f, &[0, 1]);
        let snap = c.stats();
        c.gather_rows(&f, &[0, 1, 2]);
        let d = c.stats().delta(&snap);
        assert_eq!((d.hits, d.misses), (2, 1));
        assert_eq!(d.resident_rows, 3);
    }

    #[test]
    fn concurrent_workers_see_consistent_rows() {
        // Cross-thread shard consistency: many threads gather overlapping id
        // sets through one shared cache while eviction churns; every result
        // must stay bitwise identical to the uncached gather.
        let f = std::sync::Arc::new(feats(256, 8));
        let c = std::sync::Arc::new(FeatureCache::new(64, 8));
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let f = std::sync::Arc::clone(&f);
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for round in 0..50u32 {
                        let ids: Vec<NodeId> = (0..32)
                            .map(|k| (t * 31 + round * 7 + k * 5) % 256)
                            .collect();
                        assert_eq!(c.gather_rows(&f, &ids), f.gather(&ids).data());
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.lookups(), 8 * 50 * 32);
        assert!(s.resident_rows <= 64);
    }

    #[test]
    fn hit_rate_is_monotone_in_capacity_on_shared_neighbor_workload() {
        // The fig05 workload: shared neighborhoods re-gathered across
        // consecutive batches. Bigger caches must never hit less.
        let g = argo_graph::generators::power_law(400, 4000, 0.8, 3);
        let f = feats(400, 4);
        let sampler = NeighborSampler::new(vec![5, 3]);
        let seeds: Vec<NodeId> = (0..200).collect();
        let mut rates = Vec::new();
        for cap in [16, 64, 256, 400] {
            let c = FeatureCache::new(cap, 4);
            let mut rng = SmallRng::seed_from_u64(7);
            for chunk in seeds.chunks(32) {
                let b = sampler.sample(&g, chunk, &mut rng);
                c.gather_rows(&f, b.input_nodes());
            }
            rates.push(c.stats().hit_rate());
        }
        for w in rates.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "hit rate regressed with capacity: {rates:?}"
            );
        }
        assert!(rates[rates.len() - 1] > 0.5, "full-size cache: {rates:?}");
    }

    proptest! {
        #[test]
        fn cached_gather_is_bitwise_identical(
            ids in prop::collection::vec(0u32..40, 1..64),
            cap in 0usize..32,
            shards in 1usize..5,
            dim in 1usize..6,
        ) {
            let f = feats(40, dim);
            let c = FeatureCache::with_shards(cap, dim, shards);
            // Repeated gathers exercise hit, miss and eviction paths.
            for _ in 0..3 {
                let got = c.gather_rows(&f, &ids);
                let want = f.gather(&ids);
                prop_assert_eq!(&got, want.data());
            }
        }
    }
}
