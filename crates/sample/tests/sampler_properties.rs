//! Property tests pinning the scratch-arena samplers to reference behavior.
//!
//! The PR 5 rewrite replaced per-batch `HashMap` relabeling and full
//! neighbor-list copies with an epoch-stamped dense dedup table, recycled
//! pick buffers and Floyd position sampling. These properties pin the
//! structural contract the old samplers satisfied — fanout bounds,
//! src-prefix-is-dst, no duplicate src nodes, every sampled edge exists in
//! the parent graph — across seed counts 1..130 and all four samplers, and
//! pin the pool-parallel pick path to the serial one bitwise.

use argo_graph::generators::power_law;
use argo_graph::{Graph, NodeId};
use argo_rt::{SeedSequence, ThreadPool};
use argo_sample::{
    legacy, ClusterGcnSampler, NeighborSampler, Normalization, SaintRwSampler, SampleRun,
    SampledBatch, Sampler, SamplerScratch, ShadowSampler,
};
use proptest::prelude::*;

fn graph() -> Graph {
    power_law(600, 9000, 0.8, 7)
}

/// Asymmetric variant of the fixture: drops a deterministic subset of
/// reverse edges, forcing the sort-based induced-assembly fallback (the
/// counting path only runs on symmetric adjacencies).
fn directed_graph() -> Graph {
    let g = graph();
    let mut edges = Vec::new();
    for u in 0..g.num_nodes() as NodeId {
        for &v in g.neighbors(u) {
            if u < v || (u + v) % 3 == 0 {
                edges.push((u, v));
            }
        }
    }
    let d = Graph::from_edges(g.num_nodes(), &edges, false);
    assert!(!d.is_symmetric(), "fixture must exercise the fallback");
    d
}

fn run_with(
    s: &dyn Sampler,
    g: &Graph,
    seeds: &[NodeId],
    key: u64,
    scratch: &mut SamplerScratch,
) -> SampledBatch {
    s.sample_with(g, seeds, SampleRun::new(SeedSequence::new(key), scratch))
}

fn assert_subgraph_invariants(g: &Graph, seeds: &[NodeId], batch: &SampledBatch, who: &str) {
    let SampledBatch::Subgraph(sb) = batch else {
        panic!("{who}: expected subgraph batch");
    };
    // Seeds lead the node list, in order, and seeds() mirrors them.
    assert_eq!(&sb.nodes[..seeds.len()], seeds, "{who}: seeds must lead");
    assert_eq!(sb.seeds, seeds, "{who}: seeds field mismatch");
    for (&pos, &v) in sb.seed_positions.iter().zip(seeds) {
        assert_eq!(sb.nodes[pos], v, "{who}: seed position wrong");
    }
    // No duplicate nodes.
    let mut ids = sb.nodes.clone();
    ids.sort_unstable();
    let before = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), before, "{who}: duplicate node");
    // Every induced edge exists in the parent graph.
    for i in 0..sb.adj.rows() {
        for k in sb.adj.indptr()[i]..sb.adj.indptr()[i + 1] {
            let u = sb.nodes[sb.adj.indices()[k] as usize];
            assert!(g.has_edge(sb.nodes[i], u), "{who}: edge not in graph");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn neighbor_sampler_respects_reference_structure(
        count in 1usize..130,
        offset in 0usize..400,
        key in 0u64..(1u64 << 48),
    ) {
        let g = graph();
        let seeds: Vec<NodeId> = (offset..offset + count).map(|v| v as u32).collect();
        let s = NeighborSampler::new(vec![7, 4]);
        let mut scratch = SamplerScratch::new();
        let batch = run_with(&s, &g, &seeds, key, &mut scratch);
        let SampledBatch::Blocks(mb) = &batch else {
            panic!("expected blocks");
        };
        prop_assert_eq!(mb.blocks.len(), 2);
        prop_assert_eq!(&mb.seeds, &seeds);
        for (l, blk) in mb.blocks.iter().enumerate() {
            let fanout = s.fanouts()[l];
            // Fanout bounds per row.
            for i in 0..blk.adj.rows() {
                let deg = blk.adj.indptr()[i + 1] - blk.adj.indptr()[i];
                prop_assert!(deg <= fanout, "layer {} row {} degree {} > {}", l, i, deg, fanout);
            }
            // src prefix is dst (layers self-reference through the prefix).
            prop_assert_eq!(&blk.src_nodes[..blk.dst_nodes.len()], &blk.dst_nodes[..]);
            // No duplicate src node after dense-table relabeling.
            let mut ids = blk.src_nodes.clone();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            prop_assert_eq!(ids.len(), before, "duplicate src node in layer {}", l);
            // Every sampled edge exists in the parent graph.
            for i in 0..blk.adj.rows() {
                let v = blk.dst_nodes[i];
                for k in blk.adj.indptr()[i]..blk.adj.indptr()[i + 1] {
                    let u = blk.src_nodes[blk.adj.indices()[k] as usize];
                    prop_assert!(g.has_edge(v, u), "edge {}->{} not in graph", v, u);
                }
            }
        }
        // Output-layer dst is exactly the seed list.
        prop_assert_eq!(&mb.blocks[1].dst_nodes, &seeds);
    }

    #[test]
    fn subgraph_samplers_respect_reference_structure(
        count in 1usize..130,
        offset in 0usize..400,
        key in 0u64..(1u64 << 48),
    ) {
        let g = graph();
        let seeds: Vec<NodeId> = (offset..offset + count).map(|v| v as u32).collect();
        let shadow = ShadowSampler::new(vec![6, 3], 2);
        let saint = SaintRwSampler::new(3, 2);
        let cluster = ClusterGcnSampler::new(&g, 12, 2);
        let samplers: [&dyn Sampler; 3] = [&shadow, &saint, &cluster];
        let mut scratch = SamplerScratch::new();
        for s in samplers {
            let batch = run_with(s, &g, &seeds, key, &mut scratch);
            assert_subgraph_invariants(&g, &seeds, &batch, s.name());
        }
    }

    #[test]
    fn recycled_scratch_is_equivalent_to_fresh(
        count in 1usize..130,
        offset in 0usize..400,
        key in 0u64..(1u64 << 48),
    ) {
        // A scratch arena warmed by unrelated prior batches must produce
        // batches identical to a fresh one: recycling is invisible.
        let g = graph();
        let seeds: Vec<NodeId> = (offset..offset + count).map(|v| v as u32).collect();
        let neighbor = NeighborSampler::new(vec![5, 3]);
        let shadow = ShadowSampler::new(vec![4, 2], 2);
        let samplers: [&dyn Sampler; 2] = [&neighbor, &shadow];
        for s in samplers {
            let mut fresh = SamplerScratch::new();
            let want = run_with(s, &g, &seeds, key, &mut fresh);
            let mut warm = SamplerScratch::new();
            // Pollute the arena with differently-shaped batches first.
            run_with(s, &g, &[1, 2, 3], key ^ 0x55, &mut warm);
            run_with(s, &g, &(200..260).collect::<Vec<_>>(), key ^ 0xAA, &mut warm);
            let got = run_with(s, &g, &seeds, key, &mut warm);
            prop_assert_eq!(got.input_nodes(), want.input_nodes(), "{} drifted", s.name());
            prop_assert_eq!(got.total_edges(2), want.total_edges(2));
        }
    }
}

/// One block's content: (src_nodes, dst_nodes, indptr, indices, values).
type BlockContent = (Vec<u32>, Vec<u32>, Vec<usize>, Vec<u32>, Vec<f32>);

/// Collects everything content-bearing from a blocks batch.
fn block_fingerprint(b: &SampledBatch) -> Vec<BlockContent> {
    let SampledBatch::Blocks(mb) = b else {
        panic!("expected blocks");
    };
    mb.blocks
        .iter()
        .map(|blk| {
            (
                blk.src_nodes.clone(),
                blk.dst_nodes.clone(),
                blk.adj.indptr().to_vec(),
                blk.adj.indices().to_vec(),
                blk.adj.values().map(<[f32]>::to_vec).unwrap_or_default(),
            )
        })
        .collect()
}

#[test]
fn batches_identical_across_pool_sizes_1_2_4() {
    // The tentpole determinism invariant: per-row counter-based RNG streams
    // make the sampled batch a pure function of (stream, seeds), so the
    // pool-parallel pick phase is bitwise identical to the serial one at
    // any worker count — including the fused GCN normalization values.
    let g = graph();
    let seeds: Vec<NodeId> = (0..96).collect();
    let s = NeighborSampler::new(vec![9, 5]);
    let sample_at = |pool: Option<&ThreadPool>| {
        let mut scratch = SamplerScratch::new();
        let run = SampleRun::new(SeedSequence::new(33), &mut scratch)
            .with_norm(Normalization::Gcn)
            .with_pool(pool);
        block_fingerprint(&s.sample_with(&g, &seeds, run))
    };
    let serial = sample_at(None);
    for size in [2usize, 4] {
        let pool = ThreadPool::new("t", size);
        assert_eq!(
            sample_at(Some(&pool)),
            serial,
            "pool size {size} changed batch content"
        );
    }
}

/// f32 slices compared by bit pattern: "bitwise-identical" means exactly
/// that, not approximate float equality.
fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn opt_bits(v: Option<&[f32]>) -> Option<Vec<u32>> {
    v.map(bits)
}

/// Asserts every content-bearing field of two batches is bitwise equal.
fn assert_batches_bitwise_equal(got: &SampledBatch, want: &SampledBatch, who: &str) {
    match (got, want) {
        (SampledBatch::Blocks(g), SampledBatch::Blocks(w)) => {
            assert_eq!(g.seeds, w.seeds, "{who}: seeds");
            assert_eq!(g.blocks.len(), w.blocks.len(), "{who}: block count");
            for (l, (gb, wb)) in g.blocks.iter().zip(&w.blocks).enumerate() {
                assert_eq!(gb.src_nodes, wb.src_nodes, "{who} L{l}: src_nodes");
                assert_eq!(gb.dst_nodes, wb.dst_nodes, "{who} L{l}: dst_nodes");
                assert_eq!(gb.adj.rows(), wb.adj.rows(), "{who} L{l}: rows");
                assert_eq!(gb.adj.cols(), wb.adj.cols(), "{who} L{l}: cols");
                assert_eq!(gb.adj.indptr(), wb.adj.indptr(), "{who} L{l}: indptr");
                assert_eq!(gb.adj.indices(), wb.adj.indices(), "{who} L{l}: indices");
                assert_eq!(
                    opt_bits(gb.adj.values()),
                    opt_bits(wb.adj.values()),
                    "{who} L{l}: values"
                );
                assert_eq!(
                    bits(&gb.dst_degree),
                    bits(&wb.dst_degree),
                    "{who} L{l}: dst_degree"
                );
                assert_eq!(
                    bits(&gb.src_degree),
                    bits(&wb.src_degree),
                    "{who} L{l}: src_degree"
                );
                assert_eq!(gb.norm, wb.norm, "{who} L{l}: norm");
            }
        }
        (SampledBatch::Subgraph(g), SampledBatch::Subgraph(w)) => {
            assert_eq!(g.nodes, w.nodes, "{who}: nodes");
            assert_eq!(g.seed_positions, w.seed_positions, "{who}: seed_positions");
            assert_eq!(g.seeds, w.seeds, "{who}: seeds");
            assert_eq!(bits(&g.degree), bits(&w.degree), "{who}: degree");
            assert_eq!(g.adj.rows(), w.adj.rows(), "{who}: rows");
            assert_eq!(g.adj.cols(), w.adj.cols(), "{who}: cols");
            assert_eq!(g.adj.indptr(), w.adj.indptr(), "{who}: indptr");
            assert_eq!(g.adj.indices(), w.adj.indices(), "{who}: indices");
            assert_eq!(
                opt_bits(g.adj.values()),
                opt_bits(w.adj.values()),
                "{who}: values"
            );
            assert_eq!(g.norm, w.norm, "{who}: norm");
        }
        _ => panic!("{who}: batch shape mismatch"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole equality pin: arena-CSR assembly (`sample_into` +
    /// `to_owned`) is bitwise-identical to the legacy edge-list assembly
    /// for every sampler, seed count and normalization — same RNG stream,
    /// independent scratch arenas.
    #[test]
    fn arena_assembly_matches_legacy_bitwise(
        count in 1usize..130,
        offset in 0usize..400,
        key in 0u64..(1u64 << 48),
    ) {
        let seeds: Vec<NodeId> = (offset..offset + count).map(|v| v as u32).collect();
        // Both fixtures: the symmetric graph routes through the counting
        // assembly, the directed one through the sorting fallback.
        for g in [graph(), directed_graph()] {
            let neighbor = NeighborSampler::new(vec![7, 4]);
            let shadow = ShadowSampler::new(vec![6, 3], 2);
            let saint = SaintRwSampler::new(3, 2);
            let cluster = ClusterGcnSampler::new(&g, 12, 2);
            type LegacyFn<'s> = Box<dyn Fn(&Graph, &[NodeId], SampleRun<'_>) -> SampledBatch + 's>;
            let pairs: [(&dyn Sampler, LegacyFn); 4] = [
                (&neighbor, Box::new(|g, s, r| legacy::neighbor_sample(&neighbor, g, s, r))),
                (&shadow, Box::new(|g, s, r| legacy::shadow_sample(&shadow, g, s, r))),
                (&saint, Box::new(|g, s, r| legacy::saint_sample(&saint, g, s, r))),
                (&cluster, Box::new(|g, s, r| legacy::cluster_sample(&cluster, g, s, r))),
            ];
            for (sampler, legacy_fn) in &pairs {
                for norm in [Normalization::None, Normalization::Mean, Normalization::Gcn] {
                    let mut legacy_scratch = SamplerScratch::new();
                    let want = legacy_fn(
                        &g,
                        &seeds,
                        SampleRun::new(SeedSequence::new(key), &mut legacy_scratch).with_norm(norm),
                    );
                    let mut arena_scratch = SamplerScratch::new();
                    let got = sampler.sample_with(
                        &g,
                        &seeds,
                        SampleRun::new(SeedSequence::new(key), &mut arena_scratch).with_norm(norm),
                    );
                    assert_batches_bitwise_equal(&got, &want, sampler.name());
                }
            }
        }
    }
}

#[test]
fn steady_state_assembly_is_allocation_free() {
    // Zero-alloc must cover *assembly*, not just the pick phase: once the
    // arena has seen every recurring batch shape, repeated `sample_into`
    // calls — which build the batch CSR, dedup table and degree arrays in
    // scratch — must not grow any buffer. `SamplerScratch::allocs()`
    // charges one count per batch whose arena or pick buffers grew.
    let g = graph();
    let neighbor = NeighborSampler::new(vec![7, 4]);
    let shadow = ShadowSampler::new(vec![6, 3], 2);
    let saint = SaintRwSampler::new(3, 2);
    let cluster = ClusterGcnSampler::new(&g, 12, 2);
    let samplers: [&dyn Sampler; 4] = [&neighbor, &shadow, &saint, &cluster];
    let seed_sets: Vec<Vec<NodeId>> = (0..4u32).map(|i| (i * 50..i * 50 + 64).collect()).collect();
    for s in samplers {
        let mut scratch = SamplerScratch::new();
        // Warm: visit every recurring (seed set, stream) pair twice.
        for _ in 0..2 {
            for (j, seeds) in seed_sets.iter().enumerate() {
                let run = SampleRun::new(SeedSequence::new(j as u64), &mut scratch)
                    .with_norm(Normalization::Gcn);
                let view = s.sample_into(&g, seeds, run);
                std::hint::black_box(view.metadata_bytes());
            }
        }
        let warm = scratch.allocs();
        for _ in 0..3 {
            for (j, seeds) in seed_sets.iter().enumerate() {
                let run = SampleRun::new(SeedSequence::new(j as u64), &mut scratch)
                    .with_norm(Normalization::Gcn);
                let view = s.sample_into(&g, seeds, run);
                std::hint::black_box(view.metadata_bytes());
            }
        }
        assert_eq!(
            scratch.allocs(),
            warm,
            "{}: assembly allocated in steady state",
            s.name()
        );
    }
}
