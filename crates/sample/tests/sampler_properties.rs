//! Property tests pinning the scratch-arena samplers to reference behavior.
//!
//! The PR 5 rewrite replaced per-batch `HashMap` relabeling and full
//! neighbor-list copies with an epoch-stamped dense dedup table, recycled
//! pick buffers and Floyd position sampling. These properties pin the
//! structural contract the old samplers satisfied — fanout bounds,
//! src-prefix-is-dst, no duplicate src nodes, every sampled edge exists in
//! the parent graph — across seed counts 1..130 and all four samplers, and
//! pin the pool-parallel pick path to the serial one bitwise.

use argo_graph::generators::power_law;
use argo_graph::{Graph, NodeId};
use argo_rt::{SeedSequence, ThreadPool};
use argo_sample::{
    ClusterGcnSampler, NeighborSampler, Normalization, SaintRwSampler, SampleRun, SampledBatch,
    Sampler, SamplerScratch, ShadowSampler,
};
use proptest::prelude::*;

fn graph() -> Graph {
    power_law(600, 9000, 0.8, 7)
}

fn run_with(
    s: &dyn Sampler,
    g: &Graph,
    seeds: &[NodeId],
    key: u64,
    scratch: &mut SamplerScratch,
) -> SampledBatch {
    s.sample_with(g, seeds, SampleRun::new(SeedSequence::new(key), scratch))
}

fn assert_subgraph_invariants(g: &Graph, seeds: &[NodeId], batch: &SampledBatch, who: &str) {
    let SampledBatch::Subgraph(sb) = batch else {
        panic!("{who}: expected subgraph batch");
    };
    // Seeds lead the node list, in order, and seeds() mirrors them.
    assert_eq!(&sb.nodes[..seeds.len()], seeds, "{who}: seeds must lead");
    assert_eq!(sb.seeds, seeds, "{who}: seeds field mismatch");
    for (&pos, &v) in sb.seed_positions.iter().zip(seeds) {
        assert_eq!(sb.nodes[pos], v, "{who}: seed position wrong");
    }
    // No duplicate nodes.
    let mut ids = sb.nodes.clone();
    ids.sort_unstable();
    let before = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), before, "{who}: duplicate node");
    // Every induced edge exists in the parent graph.
    for i in 0..sb.adj.rows() {
        for k in sb.adj.indptr()[i]..sb.adj.indptr()[i + 1] {
            let u = sb.nodes[sb.adj.indices()[k] as usize];
            assert!(g.has_edge(sb.nodes[i], u), "{who}: edge not in graph");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn neighbor_sampler_respects_reference_structure(
        count in 1usize..130,
        offset in 0usize..400,
        key in 0u64..(1u64 << 48),
    ) {
        let g = graph();
        let seeds: Vec<NodeId> = (offset..offset + count).map(|v| v as u32).collect();
        let s = NeighborSampler::new(vec![7, 4]);
        let mut scratch = SamplerScratch::new();
        let batch = run_with(&s, &g, &seeds, key, &mut scratch);
        let SampledBatch::Blocks(mb) = &batch else {
            panic!("expected blocks");
        };
        prop_assert_eq!(mb.blocks.len(), 2);
        prop_assert_eq!(&mb.seeds, &seeds);
        for (l, blk) in mb.blocks.iter().enumerate() {
            let fanout = s.fanouts()[l];
            // Fanout bounds per row.
            for i in 0..blk.adj.rows() {
                let deg = blk.adj.indptr()[i + 1] - blk.adj.indptr()[i];
                prop_assert!(deg <= fanout, "layer {} row {} degree {} > {}", l, i, deg, fanout);
            }
            // src prefix is dst (layers self-reference through the prefix).
            prop_assert_eq!(&blk.src_nodes[..blk.dst_nodes.len()], &blk.dst_nodes[..]);
            // No duplicate src node after dense-table relabeling.
            let mut ids = blk.src_nodes.clone();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            prop_assert_eq!(ids.len(), before, "duplicate src node in layer {}", l);
            // Every sampled edge exists in the parent graph.
            for i in 0..blk.adj.rows() {
                let v = blk.dst_nodes[i];
                for k in blk.adj.indptr()[i]..blk.adj.indptr()[i + 1] {
                    let u = blk.src_nodes[blk.adj.indices()[k] as usize];
                    prop_assert!(g.has_edge(v, u), "edge {}->{} not in graph", v, u);
                }
            }
        }
        // Output-layer dst is exactly the seed list.
        prop_assert_eq!(&mb.blocks[1].dst_nodes, &seeds);
    }

    #[test]
    fn subgraph_samplers_respect_reference_structure(
        count in 1usize..130,
        offset in 0usize..400,
        key in 0u64..(1u64 << 48),
    ) {
        let g = graph();
        let seeds: Vec<NodeId> = (offset..offset + count).map(|v| v as u32).collect();
        let shadow = ShadowSampler::new(vec![6, 3], 2);
        let saint = SaintRwSampler::new(3, 2);
        let cluster = ClusterGcnSampler::new(&g, 12, 2);
        let samplers: [&dyn Sampler; 3] = [&shadow, &saint, &cluster];
        let mut scratch = SamplerScratch::new();
        for s in samplers {
            let batch = run_with(s, &g, &seeds, key, &mut scratch);
            assert_subgraph_invariants(&g, &seeds, &batch, s.name());
        }
    }

    #[test]
    fn recycled_scratch_is_equivalent_to_fresh(
        count in 1usize..130,
        offset in 0usize..400,
        key in 0u64..(1u64 << 48),
    ) {
        // A scratch arena warmed by unrelated prior batches must produce
        // batches identical to a fresh one: recycling is invisible.
        let g = graph();
        let seeds: Vec<NodeId> = (offset..offset + count).map(|v| v as u32).collect();
        let neighbor = NeighborSampler::new(vec![5, 3]);
        let shadow = ShadowSampler::new(vec![4, 2], 2);
        let samplers: [&dyn Sampler; 2] = [&neighbor, &shadow];
        for s in samplers {
            let mut fresh = SamplerScratch::new();
            let want = run_with(s, &g, &seeds, key, &mut fresh);
            let mut warm = SamplerScratch::new();
            // Pollute the arena with differently-shaped batches first.
            run_with(s, &g, &[1, 2, 3], key ^ 0x55, &mut warm);
            run_with(s, &g, &(200..260).collect::<Vec<_>>(), key ^ 0xAA, &mut warm);
            let got = run_with(s, &g, &seeds, key, &mut warm);
            prop_assert_eq!(got.input_nodes(), want.input_nodes(), "{} drifted", s.name());
            prop_assert_eq!(got.total_edges(2), want.total_edges(2));
        }
    }
}

/// One block's content: (src_nodes, dst_nodes, indptr, indices, values).
type BlockContent = (Vec<u32>, Vec<u32>, Vec<usize>, Vec<u32>, Vec<f32>);

/// Collects everything content-bearing from a blocks batch.
fn block_fingerprint(b: &SampledBatch) -> Vec<BlockContent> {
    let SampledBatch::Blocks(mb) = b else {
        panic!("expected blocks");
    };
    mb.blocks
        .iter()
        .map(|blk| {
            (
                blk.src_nodes.clone(),
                blk.dst_nodes.clone(),
                blk.adj.indptr().to_vec(),
                blk.adj.indices().to_vec(),
                blk.adj.values().map(<[f32]>::to_vec).unwrap_or_default(),
            )
        })
        .collect()
}

#[test]
fn batches_identical_across_pool_sizes_1_2_4() {
    // The tentpole determinism invariant: per-row counter-based RNG streams
    // make the sampled batch a pure function of (stream, seeds), so the
    // pool-parallel pick phase is bitwise identical to the serial one at
    // any worker count — including the fused GCN normalization values.
    let g = graph();
    let seeds: Vec<NodeId> = (0..96).collect();
    let s = NeighborSampler::new(vec![9, 5]);
    let sample_at = |pool: Option<&ThreadPool>| {
        let mut scratch = SamplerScratch::new();
        let run = SampleRun::new(SeedSequence::new(33), &mut scratch)
            .with_norm(Normalization::Gcn)
            .with_pool(pool);
        block_fingerprint(&s.sample_with(&g, &seeds, run))
    };
    let serial = sample_at(None);
    for size in [2usize, 4] {
        let pool = ThreadPool::new("t", size);
        assert_eq!(
            sample_at(Some(&pool)),
            serial,
            "pool size {size} changed batch content"
        );
    }
}
