//! A free-list arena for recycling matrix allocations across batches.
//!
//! Every training step allocates the same family of buffers — layer
//! activations, aggregation outputs, gradient matrices — whose shapes are
//! stable across batches of similar size. Instead of returning them to the
//! allocator (and paging fresh zero pages back in next step), a model owns a
//! [`Workspace`] and round-trips buffers through it: [`Workspace::take`]
//! hands out a zeroed matrix reusing the best-fitting retired allocation,
//! [`Workspace::put`] retires one.
//!
//! The arena is deliberately dumb: a capacity-sorted free list with
//! best-fit lookup. It is **not** thread-safe — each model keeps its own
//! (behind a `RefCell`), which is the right granularity because kernels
//! parallelize *inside* one step, never across steps of one model.

use std::cell::RefCell;

use crate::dense::Matrix;

/// Maximum retired buffers kept; beyond this the smallest is dropped.
const MAX_FREE: usize = 32;

/// Per-thread panel-packing scratch for the SIMD GEMM tier. Pool workers
/// each pack their own row range concurrently, so these buffers are
/// thread-local rather than routed through a model's (single-threaded)
/// [`Workspace`]. They grow to the high-water panel size on first use and
/// are reused for every subsequent GEMM on that thread — `grows` counts
/// reallocations so tests can pin the zero-steady-state-alloc property.
#[derive(Default)]
struct PackScratch {
    a: Vec<f32>,
    b: Vec<f32>,
    grows: usize,
}

thread_local! {
    static PACK: RefCell<PackScratch> = const { RefCell::new(PackScratch { a: Vec::new(), b: Vec::new(), grows: 0 }) };
}

/// Runs `f` with this thread's packing buffers resized to at least
/// `a_len` / `b_len` elements (contents unspecified on entry; callers
/// overwrite before reading). Not reentrant — kernels never recurse into
/// another GEMM while packing.
pub(crate) fn with_pack_buffers<R>(
    a_len: usize,
    b_len: usize,
    f: impl FnOnce(&mut [f32], &mut [f32]) -> R,
) -> R {
    PACK.with(|cell| {
        let mut scratch = cell.borrow_mut();
        if scratch.a.len() < a_len {
            scratch.grows += 1;
            scratch.a.resize(a_len, 0.0);
        }
        if scratch.b.len() < b_len {
            scratch.grows += 1;
            scratch.b.resize(b_len, 0.0);
        }
        let PackScratch { a, b, .. } = &mut *scratch;
        f(&mut a[..a_len], &mut b[..b_len])
    })
}

/// Times this thread's pack buffers have grown (ever). Steady-state
/// kernels must leave this constant.
pub fn pack_buffer_grows() -> usize {
    PACK.with(|cell| cell.borrow().grows)
}

/// A capacity-sorted free list of retired `Vec<f32>` allocations.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Retired buffers, sorted ascending by capacity (best-fit = first fit).
    free: Vec<Vec<f32>>,
    allocs: usize,
    reuses: usize,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a zeroed `rows × cols` matrix, reusing the smallest retired
    /// buffer whose capacity suffices, or allocating fresh.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let need = rows * cols;
        let pick = self.free.iter().position(|b| b.capacity() >= need);
        match pick {
            Some(i) => {
                self.reuses += 1;
                let mut buf = self.free.remove(i);
                buf.clear();
                buf.resize(need, 0.0);
                Matrix::from_vec(rows, cols, buf)
            }
            None => {
                self.allocs += 1;
                Matrix::zeros(rows, cols)
            }
        }
    }

    /// Retires a matrix's allocation into the free list.
    pub fn put(&mut self, m: Matrix) {
        let buf = m.into_data();
        if buf.capacity() == 0 {
            return;
        }
        let at = self.free.partition_point(|b| b.capacity() < buf.capacity());
        self.free.insert(at, buf);
        if self.free.len() > MAX_FREE {
            // Drop the smallest: large buffers are the expensive ones.
            self.free.remove(0);
        }
    }

    /// Fresh allocations served so far.
    pub fn allocs(&self) -> usize {
        self.allocs
    }

    /// Takes satisfied from the free list so far.
    pub fn reuses(&self) -> usize {
        self.reuses
    }

    /// Buffers currently parked in the free list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_even_after_reuse() {
        let mut ws = Workspace::new();
        let mut m = ws.take(3, 4);
        m.data_mut().fill(7.5);
        ws.put(m);
        let m2 = ws.take(3, 4);
        assert!(m2.data().iter().all(|&x| x == 0.0));
        assert_eq!((ws.allocs(), ws.reuses()), (1, 1));
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        ws.put(Matrix::zeros(10, 10)); // cap 100
        ws.put(Matrix::zeros(2, 3)); // cap 6
        let m = ws.take(2, 2); // needs 4 → the 6-cap buffer
        assert_eq!(m.data().len(), 4);
        assert_eq!(ws.free_len(), 1);
        let big = ws.take(5, 10); // needs 50 → the 100-cap buffer
        assert_eq!(big.data().len(), 50);
        assert_eq!(ws.allocs(), 0);
        assert_eq!(ws.reuses(), 2);
    }

    #[test]
    fn shape_can_differ_as_long_as_capacity_fits() {
        let mut ws = Workspace::new();
        ws.put(Matrix::zeros(8, 8));
        let m = ws.take(4, 16);
        assert_eq!((m.rows(), m.cols()), (4, 16));
        assert_eq!(ws.reuses(), 1);
    }

    #[test]
    fn free_list_is_capped() {
        let mut ws = Workspace::new();
        for i in 1..=(MAX_FREE + 5) {
            ws.put(Matrix::zeros(i, 1));
        }
        assert_eq!(ws.free_len(), MAX_FREE);
        // The survivors are the largest ones.
        let m = ws.take(MAX_FREE + 5, 1);
        assert_eq!(ws.reuses(), 1);
        assert_eq!(m.data().len(), MAX_FREE + 5);
    }

    #[test]
    fn pack_buffers_grow_once_then_stabilize() {
        // Run on a dedicated thread so other tests' pack use can't skew
        // the thread-local counter.
        std::thread::spawn(|| {
            let before = pack_buffer_grows();
            with_pack_buffers(16, 32, |a, b| {
                assert_eq!((a.len(), b.len()), (16, 32));
                a.fill(1.0);
                b.fill(2.0);
            });
            assert_eq!(pack_buffer_grows(), before + 2);
            for _ in 0..4 {
                with_pack_buffers(16, 32, |a, b| {
                    assert_eq!((a.len(), b.len()), (16, 32));
                });
            }
            with_pack_buffers(8, 8, |a, b| {
                assert_eq!((a.len(), b.len()), (8, 8));
            });
            assert_eq!(
                pack_buffer_grows(),
                before + 2,
                "smaller takes must not grow"
            );
            with_pack_buffers(64, 32, |_, _| {});
            assert_eq!(pack_buffer_grows(), before + 3, "only A grew");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn empty_matrices_are_not_parked() {
        let mut ws = Workspace::new();
        ws.put(Matrix::zeros(0, 5));
        assert_eq!(ws.free_len(), 0);
    }
}
