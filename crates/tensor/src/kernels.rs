//! Cache-blocked GEMM kernels with register-tiled micro-kernels.
//!
//! The naive kernels in [`crate::dense`] stream the whole of `B` through the
//! cache once per row of `A`; past L2-sized operands that turns GEMM
//! memory-bound. The kernels here tile the `i`/`k`/`j` loops so a
//! `KC × NC` panel of `B` stays resident while an `MC`-row panel of `A`
//! is multiplied against it, and an `MR`-row micro-kernel keeps `MR`
//! output rows in registers across the `k` loop.
//!
//! Accumulation order is preserved relative to the naive `ikj` kernels:
//! for every output element the `k` contributions are added in ascending
//! order, one at a time — so the blocked results are exactly equal
//! (under `f32` `==`) to the reference implementations, not merely close.
//! The property suite in `tests/kernel_properties.rs` pins this down.
//!
//! All functions take explicit row ranges so the pool-parallel wrappers in
//! [`crate::dispatch`] can hand disjoint output slices to workers, and so
//! the fused GraphSAGE layer can multiply against a *row window* of the
//! weight matrix (`W_self` / `W_neigh`) without materializing the
//! `[h ‖ agg]` concatenation.

use std::ops::Range;

use crate::dense::Matrix;

/// Rows of `A` per cache block.
pub(crate) const MC: usize = 64;
/// Reduction depth per cache block (a `KC × NC` panel of `B` is ~512 KiB of
/// f32 at the defaults — sized for a shared L2).
pub(crate) const KC: usize = 256;
/// Columns of `B` per cache block.
pub(crate) const NC: usize = 512;
/// Micro-kernel row tile: output rows held live across the `k` loop.
const MR: usize = 4;

/// Computes `dst = A[rows] @ B[b_row_offset ..]` (or `+=` when
/// `accumulate`), where the `B` operand is the row window
/// `b.rows() ∈ [b_row_offset, b_row_offset + a.cols())`.
///
/// `dst` is row-major `rows.len() × b.cols()`.
pub(crate) fn gemm_into(
    a: &Matrix,
    rows: Range<usize>,
    b: &Matrix,
    b_row_offset: usize,
    dst: &mut [f32],
    accumulate: bool,
) {
    let k_dim = a.cols();
    let n = b.cols();
    debug_assert!(b_row_offset + k_dim <= b.rows(), "B row window in range");
    debug_assert_eq!(dst.len(), rows.len() * n, "dst shape");
    if !accumulate {
        dst.fill(0.0);
    }
    let m = rows.len();
    // k is the outermost blocked loop so that, per output element, the k
    // contributions still arrive in ascending order (exactness invariant).
    for kk in (0..k_dim).step_by(KC) {
        let k_hi = (kk + KC).min(k_dim);
        for jj in (0..n).step_by(NC) {
            let j_hi = (jj + NC).min(n);
            for ii in (0..m).step_by(MC) {
                let i_hi = (ii + MC).min(m);
                let mut i = ii;
                while i + MR <= i_hi {
                    micro_gemm_mr(
                        a,
                        rows.start + i,
                        kk..k_hi,
                        b,
                        b_row_offset,
                        jj..j_hi,
                        &mut dst[i * n..(i + MR) * n],
                        n,
                    );
                    i += MR;
                }
                for r in i..i_hi {
                    let arow = a.row(rows.start + r);
                    let drow = &mut dst[r * n + jj..r * n + j_hi];
                    for (k, &av) in arow.iter().enumerate().take(k_hi).skip(kk) {
                        let brow = &b.row(b_row_offset + k)[jj..j_hi];
                        for (d, &bv) in drow.iter_mut().zip(brow) {
                            *d += av * bv;
                        }
                    }
                }
            }
        }
    }
}

/// `MR`-row GEMM micro-kernel: `dst[0..MR] += A[a_row0..+MR][kk] @ B`
/// restricted to columns `jj`. The four output row strips stay in
/// registers/L1 across the whole `k` block; each `B` row is loaded once and
/// feeds four independent accumulation streams (the register tiling).
#[allow(clippy::too_many_arguments)] // internal micro-kernel: all args are loop indices
#[inline]
fn micro_gemm_mr(
    a: &Matrix,
    a_row0: usize,
    kk: Range<usize>,
    b: &Matrix,
    b_row_offset: usize,
    jj: Range<usize>,
    dst: &mut [f32],
    n: usize,
) {
    let (a0, a1, a2, a3) = (
        a.row(a_row0),
        a.row(a_row0 + 1),
        a.row(a_row0 + 2),
        a.row(a_row0 + 3),
    );
    let (d01, d23) = dst.split_at_mut(2 * n);
    let (d0, d1) = d01.split_at_mut(n);
    let (d2, d3) = d23.split_at_mut(n);
    let (d0, d1, d2, d3) = (
        &mut d0[jj.clone()],
        &mut d1[jj.clone()],
        &mut d2[jj.clone()],
        &mut d3[jj.clone()],
    );
    for k in kk {
        let bk = &b.row(b_row_offset + k)[jj.clone()];
        let (a0k, a1k, a2k, a3k) = (a0[k], a1[k], a2[k], a3[k]);
        let it = d0
            .iter_mut()
            .zip(d1.iter_mut())
            .zip(d2.iter_mut())
            .zip(d3.iter_mut())
            .zip(bk.iter());
        for ((((r0, r1), r2), r3), &bv) in it {
            *r0 += a0k * bv;
            *r1 += a1k * bv;
            *r2 += a2k * bv;
            *r3 += a3k * bv;
        }
    }
}

/// Computes `dst += A[a_row_offset + rows]ᵀ @ B[rows]` where `dst` is the
/// full `a.cols() × b.cols()` weight-gradient matrix (`dW = Xᵀ dY`
/// restricted to a row range of the reduction). `a_row_offset` slides the
/// `A` window relative to `B` so a gathered batch (`B` rows are
/// batch-local) can reduce against a row window of a larger activation
/// matrix. Callers parallelize by giving each worker a disjoint `rows`
/// range and a private `dst`, then reducing.
///
/// Contributions per output element arrive in ascending row order, matching
/// the naive kernel exactly when `rows` covers the whole reduction
/// serially.
pub(crate) fn transpose_self_into(
    a: &Matrix,
    b: &Matrix,
    rows: Range<usize>,
    a_row_offset: usize,
    dst: &mut [f32],
    accumulate: bool,
) {
    let k_a = a.cols();
    let n = b.cols();
    debug_assert_eq!(dst.len(), k_a * n, "dst shape");
    if !accumulate {
        dst.fill(0.0);
    }
    let lo = rows.start;
    let m = rows.len();
    // Block the reduction (rows of A/B) and the output rows (cols of A):
    // a KC-row panel of B stays hot while MC output rows accumulate it.
    for rr in (0..m).step_by(KC) {
        let r_hi = (rr + KC).min(m);
        for ii in (0..k_a).step_by(MC) {
            let i_hi = (ii + MC).min(k_a);
            let mut r = rr;
            while r + MR <= r_hi {
                // 4-row unroll of the reduction: one pass over the dst rows
                // folds four (a_row ⊗ b_row) outer products, added
                // sequentially so accumulation order is still ascending.
                let (ar0, ar1, ar2, ar3) = (
                    a.row(a_row_offset + lo + r),
                    a.row(a_row_offset + lo + r + 1),
                    a.row(a_row_offset + lo + r + 2),
                    a.row(a_row_offset + lo + r + 3),
                );
                let (br0, br1, br2, br3) = (
                    b.row(lo + r),
                    b.row(lo + r + 1),
                    b.row(lo + r + 2),
                    b.row(lo + r + 3),
                );
                for i in ii..i_hi {
                    let (x0, x1, x2, x3) = (ar0[i], ar1[i], ar2[i], ar3[i]);
                    let drow = &mut dst[i * n..(i + 1) * n];
                    let it = drow
                        .iter_mut()
                        .zip(br0.iter())
                        .zip(br1.iter())
                        .zip(br2.iter())
                        .zip(br3.iter());
                    for ((((d, &y0), &y1), &y2), &y3) in it {
                        let mut v = *d;
                        v += x0 * y0;
                        v += x1 * y1;
                        v += x2 * y2;
                        v += x3 * y3;
                        *d = v;
                    }
                }
                r += MR;
            }
            for rem in r..r_hi {
                let ar = a.row(a_row_offset + lo + rem);
                let br = b.row(lo + rem);
                for i in ii..i_hi {
                    let x = ar[i];
                    let drow = &mut dst[i * n..(i + 1) * n];
                    for (d, &y) in drow.iter_mut().zip(br) {
                        *d += x * y;
                    }
                }
            }
        }
    }
}

/// Computes `dst = A[a_rows] @ B[b_rows]ᵀ`: every output element is the dot
/// product `a.row(i) · b.row(j)`. `dst` is `a_rows.len() × b_rows.len()`.
///
/// The micro-kernel computes a 2×4 tile of dots with eight independent
/// accumulator chains (ILP), but each individual dot still sums `k` in
/// ascending order with a single accumulator — exact against the naive
/// kernel.
pub(crate) fn transpose_other_into(
    a: &Matrix,
    a_rows: Range<usize>,
    b: &Matrix,
    b_rows: Range<usize>,
    dst: &mut [f32],
) {
    debug_assert_eq!(a.cols(), b.cols(), "inner dim");
    let k_dim = a.cols();
    let n = b_rows.len();
    debug_assert_eq!(dst.len(), a_rows.len() * n, "dst shape");
    let m = a_rows.len();
    const TI: usize = 2;
    const TJ: usize = 4;
    let mut i = 0;
    while i + TI <= m {
        let (ar0, ar1) = (a.row(a_rows.start + i), a.row(a_rows.start + i + 1));
        let mut j = 0;
        while j + TJ <= n {
            let (br0, br1, br2, br3) = (
                b.row(b_rows.start + j),
                b.row(b_rows.start + j + 1),
                b.row(b_rows.start + j + 2),
                b.row(b_rows.start + j + 3),
            );
            let mut acc = [0.0f32; TI * TJ];
            for k in 0..k_dim {
                let (x0, x1) = (ar0[k], ar1[k]);
                let (y0, y1, y2, y3) = (br0[k], br1[k], br2[k], br3[k]);
                acc[0] += x0 * y0;
                acc[1] += x0 * y1;
                acc[2] += x0 * y2;
                acc[3] += x0 * y3;
                acc[4] += x1 * y0;
                acc[5] += x1 * y1;
                acc[6] += x1 * y2;
                acc[7] += x1 * y3;
            }
            dst[i * n + j..i * n + j + TJ].copy_from_slice(&acc[..TJ]);
            dst[(i + 1) * n + j..(i + 1) * n + j + TJ].copy_from_slice(&acc[TJ..]);
            j += TJ;
        }
        for jr in j..n {
            let br = b.row(b_rows.start + jr);
            let (mut s0, mut s1) = (0.0f32, 0.0f32);
            for k in 0..k_dim {
                s0 += ar0[k] * br[k];
                s1 += ar1[k] * br[k];
            }
            dst[i * n + jr] = s0;
            dst[(i + 1) * n + jr] = s1;
        }
        i += TI;
    }
    for ir in i..m {
        let ar = a.row(a_rows.start + ir);
        for (jr, d) in dst[ir * n..(ir + 1) * n].iter_mut().enumerate() {
            let br = b.row(b_rows.start + jr);
            let mut s = 0.0f32;
            for (x, y) in ar.iter().zip(br) {
                s += x * y;
            }
            *d = s;
        }
    }
}

/// Fused GEMM write-back: adds `bias` to every row of `dst` and, when
/// `relu`, clamps negatives in place while recording the activation mask.
/// `mask`, when present, covers exactly the same elements as `dst`.
pub(crate) fn epilogue_bias_relu(
    dst: &mut [f32],
    bias: &[f32],
    relu: bool,
    mask: Option<&mut [bool]>,
) {
    let n = bias.len();
    debug_assert!(dst.len().is_multiple_of(n.max(1)), "dst rows × bias len");
    match (relu, mask) {
        (true, Some(mask)) => {
            debug_assert_eq!(mask.len(), dst.len(), "mask shape");
            for (drow, mrow) in dst.chunks_exact_mut(n).zip(mask.chunks_exact_mut(n)) {
                for ((v, &bv), m) in drow.iter_mut().zip(bias).zip(mrow.iter_mut()) {
                    let z = *v + bv;
                    let active = z > 0.0;
                    *m = active;
                    *v = if active { z } else { 0.0 };
                }
            }
        }
        (true, None) => {
            // Inference: clamp without recording a mask (no backward pass).
            for drow in dst.chunks_exact_mut(n) {
                for (v, &bv) in drow.iter_mut().zip(bias) {
                    let z = *v + bv;
                    *v = if z > 0.0 { z } else { 0.0 };
                }
            }
        }
        (false, _) => {
            for drow in dst.chunks_exact_mut(n) {
                for (v, &bv) in drow.iter_mut().zip(bias) {
                    *v += bv;
                }
            }
        }
    }
}

impl Matrix {
    /// Cache-blocked `self @ other`; exactly equal to [`Matrix::matmul`].
    pub fn matmul_blocked(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols(), other.rows(), "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows(), other.cols());
        gemm_into(self, 0..self.rows(), other, 0, out.data_mut(), false);
        out
    }

    /// Cache-blocked `selfᵀ @ other`; exactly equal to
    /// [`Matrix::matmul_transpose_self`].
    pub fn matmul_transpose_self_blocked(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_transpose_self shape mismatch"
        );
        let mut out = Matrix::zeros(self.cols(), other.cols());
        transpose_self_into(self, other, 0..self.rows(), 0, out.data_mut(), false);
        out
    }

    /// Register-tiled `self @ otherᵀ`; exactly equal to
    /// [`Matrix::matmul_transpose_other`].
    pub fn matmul_transpose_other_blocked(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_transpose_other shape mismatch"
        );
        let mut out = Matrix::zeros(self.rows(), other.rows());
        transpose_other_into(self, 0..self.rows(), other, 0..other.rows(), out.data_mut());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_matmul_matches_naive_exactly() {
        for (m, k, n) in [(1, 1, 1), (7, 13, 5), (65, 300, 9), (130, 64, 520)] {
            let a = Matrix::xavier(m, k, 1);
            let b = Matrix::xavier(k, n, 2);
            let naive = a.matmul(&b);
            let blocked = a.matmul_blocked(&b);
            assert_eq!(naive.data(), blocked.data(), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_transpose_self_matches_naive_exactly() {
        for (rows, ka, n) in [(1, 1, 1), (300, 7, 11), (520, 65, 4)] {
            let a = Matrix::xavier(rows, ka, 3);
            let b = Matrix::xavier(rows, n, 4);
            assert_eq!(
                a.matmul_transpose_self(&b).data(),
                a.matmul_transpose_self_blocked(&b).data(),
                "shape {rows}x{ka}x{n}"
            );
        }
    }

    #[test]
    fn blocked_transpose_other_matches_naive_exactly() {
        for (m, k, r) in [(1, 1, 1), (9, 70, 5), (67, 13, 130)] {
            let a = Matrix::xavier(m, k, 5);
            let b = Matrix::xavier(r, k, 6);
            assert_eq!(
                a.matmul_transpose_other(&b).data(),
                a.matmul_transpose_other_blocked(&b).data(),
                "shape {m}x{k}x{r}"
            );
        }
    }

    #[test]
    fn gemm_into_row_window_of_b() {
        // Multiplying against a row window of B equals slicing B first:
        // the fused-SAGE invariant (W_self / W_neigh halves of one W).
        let a = Matrix::xavier(10, 6, 7);
        let w = Matrix::xavier(12, 8, 8); // two stacked 6x8 halves
        let mut top = Matrix::zeros(10, 8);
        gemm_into(&a, 0..10, &w, 0, top.data_mut(), false);
        let mut bot = Matrix::zeros(10, 8);
        gemm_into(&a, 0..10, &w, 6, bot.data_mut(), false);
        let w_top = Matrix::from_vec(6, 8, w.data()[..48].to_vec());
        let w_bot = Matrix::from_vec(6, 8, w.data()[48..].to_vec());
        assert_eq!(top.data(), a.matmul(&w_top).data());
        assert_eq!(bot.data(), a.matmul(&w_bot).data());
        // accumulate=true fuses the two halves into one output.
        let mut fused = top.clone();
        gemm_into(&a, 0..10, &w, 6, fused.data_mut(), true);
        for (f, (t, b)) in fused.data().iter().zip(top.data().iter().zip(bot.data())) {
            assert!((f - (t + b)).abs() < 1e-5);
        }
    }

    #[test]
    fn epilogue_bias_relu_masks_and_clamps() {
        let mut d = vec![1.0f32, -2.0, 0.5, -0.25];
        let mut mask = vec![false; 4];
        epilogue_bias_relu(&mut d, &[0.0, 1.0], true, Some(&mut mask));
        assert_eq!(d, vec![1.0, 0.0, 0.5, 0.75]);
        assert_eq!(mask, vec![true, false, true, true]);
        let mut d2 = vec![1.0f32, -2.0];
        epilogue_bias_relu(&mut d2, &[0.5, 0.5], false, None);
        assert_eq!(d2, vec![1.5, -1.5]);
    }
}
