//! Dense row-major matrix and GEMM kernels.

use argo_rt::{racecheck, ThreadPool};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Dense `rows x cols` matrix of `f32`, row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps existing data (`data.len() == rows * cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization, deterministic in `seed`.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Backing storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable backing storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its backing storage (so a
    /// [`crate::workspace::Workspace`] can recycle the allocation).
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// `self @ other` (serial, ikj-ordered for cache friendliness).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        matmul_rows_into(self, other, 0..self.rows, out.data_mut());
        out
    }

    /// `self @ other` with the row loop parallelized over `pool`.
    pub fn matmul_pool(&self, other: &Matrix, pool: &ThreadPool) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n_cols = other.cols;
        // Partition output rows across workers; each worker writes a disjoint
        // row range.
        let rows = self.rows;
        let out_ptr = out.data.as_mut_ptr() as usize;
        let shadow = racecheck::region("dense.matmul_pool", rows);
        pool.parallel_ranges(rows, |range| {
            racecheck::write(&shadow, range.start, range.len());
            // SAFETY: each range is a disjoint set of output rows.
            let dst = unsafe {
                std::slice::from_raw_parts_mut(
                    (out_ptr as *mut f32).add(range.start * n_cols),
                    range.len() * n_cols,
                )
            };
            matmul_rows_into(self, other, range, dst);
        });
        out
    }

    /// `selfᵀ @ other` (used for weight gradients: `dW = Xᵀ dY`).
    pub fn matmul_transpose_self(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_transpose_self shape mismatch"
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let xr = self.row(k);
            let yr = other.row(k);
            for (i, &x) in xr.iter().enumerate() {
                if x == 0.0 {
                    continue;
                }
                let dst = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (d, &y) in dst.iter_mut().zip(yr) {
                    *d += x * y;
                }
            }
        }
        out
    }

    /// `self @ otherᵀ` (used for input gradients: `dX = dY Wᵀ`).
    pub fn matmul_transpose_other(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_other shape mismatch"
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a = self.row(i);
            for j in 0..other.rows {
                let b = other.row(j);
                let mut acc = 0.0f32;
                for (x, y) in a.iter().zip(b) {
                    acc += x * y;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]` (GraphSAGE concat, Eq. 2).
    pub fn concat_cols(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let cols = self.cols + other.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * cols + self.cols..(r + 1) * cols].copy_from_slice(other.row(r));
        }
        out
    }

    /// Splits columns at `at`: inverse of [`Matrix::concat_cols`].
    pub fn split_cols(&self, at: usize) -> (Matrix, Matrix) {
        assert!(at <= self.cols);
        let mut a = Matrix::zeros(self.rows, at);
        let mut b = Matrix::zeros(self.rows, self.cols - at);
        for r in 0..self.rows {
            a.row_mut(r).copy_from_slice(&self.row(r)[..at]);
            b.row_mut(r).copy_from_slice(&self.row(r)[at..]);
        }
        (a, b)
    }

    /// Element-wise `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scales all elements by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for a in self.data.iter_mut() {
            *a *= alpha;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Takes the rows listed in `ids` into a new matrix.
    pub fn gather_rows(&self, ids: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(ids.len(), self.cols);
        for (i, &v) in ids.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(v as usize));
        }
        out
    }
}

/// Computes rows `range` of `a @ b` into `dst` (row-major, `range.len() x
/// b.cols` starting at `dst[0]`).
fn matmul_rows_into(a: &Matrix, b: &Matrix, range: std::ops::Range<usize>, dst: &mut [f32]) {
    let n = b.cols;
    debug_assert_eq!(dst.len(), range.len() * n);
    for (oi, i) in range.enumerate() {
        let arow = a.row(i);
        let drow = &mut dst[oi * n..(oi + 1) * n];
        for (k, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = b.row(k);
            for (d, &bv) in drow.iter_mut().zip(brow) {
                *d += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::xavier(5, 5, 1);
        let mut id = Matrix::zeros(5, 5);
        for i in 0..5 {
            id.set(i, i, 1.0);
        }
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn matmul_pool_matches_serial() {
        let pool = ThreadPool::new("t", 3);
        let a = Matrix::xavier(17, 9, 2);
        let b = Matrix::xavier(9, 13, 3);
        let serial = a.matmul(&b);
        let parallel = a.matmul_pool(&b, &pool);
        for (x, y) in serial.data().iter().zip(parallel.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        m(2, 3, &[0.; 6]).matmul(&m(2, 2, &[0.; 4]));
    }

    #[test]
    fn transpose_self_matches_explicit() {
        let x = Matrix::xavier(6, 4, 5);
        let y = Matrix::xavier(6, 3, 6);
        let got = x.matmul_transpose_self(&y);
        // Explicit transpose then matmul.
        let mut xt = Matrix::zeros(4, 6);
        for i in 0..6 {
            for j in 0..4 {
                xt.set(j, i, x.get(i, j));
            }
        }
        let want = xt.matmul(&y);
        for (a, b) in got.data().iter().zip(want.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_other_matches_explicit() {
        let x = Matrix::xavier(5, 4, 7);
        let w = Matrix::xavier(3, 4, 8);
        let got = x.matmul_transpose_other(&w);
        let mut wt = Matrix::zeros(4, 3);
        for i in 0..3 {
            for j in 0..4 {
                wt.set(j, i, w.get(i, j));
            }
        }
        let want = x.matmul(&wt);
        for (a, b) in got.data().iter().zip(want.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn concat_and_split_roundtrip() {
        let a = Matrix::xavier(4, 3, 9);
        let b = Matrix::xavier(4, 2, 10);
        let cat = a.concat_cols(&b);
        assert_eq!(cat.cols(), 5);
        let (a2, b2) = cat.split_cols(3);
        assert_eq!(a, a2);
        assert_eq!(b, b2);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = m(1, 3, &[1., 2., 3.]);
        let b = m(1, 3, &[10., 20., 30.]);
        a.axpy(0.1, &b);
        assert_eq!(a.data(), &[2., 4., 6.]);
        a.scale(0.5);
        assert_eq!(a.data(), &[1., 2., 3.]);
    }

    #[test]
    fn gather_rows_selects() {
        let a = m(3, 2, &[0., 1., 2., 3., 4., 5.]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g.data(), &[4., 5., 0., 1.]);
    }

    #[test]
    fn xavier_is_bounded_and_deterministic() {
        let a = Matrix::xavier(10, 10, 4);
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(a.data().iter().all(|x| x.abs() <= bound));
        assert_eq!(a, Matrix::xavier(10, 10, 4));
        assert_ne!(a, Matrix::xavier(10, 10, 5));
    }

    #[test]
    fn frobenius_norm_known() {
        let a = m(1, 2, &[3., 4.]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }
}
