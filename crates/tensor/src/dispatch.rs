//! The kernel dispatch policy: one place that decides serial vs
//! pool-parallel and routes every model-side matmul/SpMM through the
//! blocked kernels.
//!
//! Before this module, `nn/model.rs` carried a hard-coded
//! `a.rows() >= 64 && pool.size() > 1` heuristic copy-pasted across private
//! helpers. [`DispatchPolicy`] hoists that decision behind a tunable row
//! threshold and exposes the *semantic* operations a GNN layer needs —
//! `gemm`, `aggregate`, `grad_weights`, … — so callers in `nn`/`engine`
//! never touch the raw serial kernels (enforced by the `kernel-dispatch`
//! argo-lint rule).
//!
//! Parallelization strategies per operation:
//!
//! * forward GEMM / SpMM / input gradients — partition **output rows**
//!   across workers; each worker writes a disjoint row window.
//! * transposed SpMM — gather over the cached [`crate::sparse::CscMirror`]
//!   (output rows again disjoint).
//! * weight gradients (`dW = Xᵀ dY`, a reduction over rows) — per-worker
//!   partial accumulators folded **in range order** on the caller via
//!   [`ThreadPool::parallel_map_reduce`], so results are deterministic for
//!   a fixed pool size.

use std::ops::Range;

use argo_rt::{racecheck, ThreadPool};

use crate::dense::Matrix;
use crate::kernels;
use crate::quant::{self, QuantizedMatrix};
use crate::simd;
use crate::sparse::{SparseMatrix, SparseView};

/// Default minimum number of rows before a kernel goes pool-parallel —
/// below this the fork/join overhead outweighs the work.
pub const DEFAULT_ROW_THRESHOLD: usize = 64;

/// Default minimum *sparse work* (stored entries × dense columns, i.e.
/// multiply-adds) before an SpMM goes pool-parallel. Sparse gathers are
/// memory-bound: at the benched 4096-row / nnz≈16 / 64-feature shape
/// (~4.2 M madds) the pool ran at 0.86× serial, so the crossover sits
/// above that — rows alone are not a predictor for SpMM the way they are
/// for GEMM.
pub const DEFAULT_SPARSE_WORK_THRESHOLD: usize = 8 * 1024 * 1024;

/// What a GEMM does to its output as it is written back: nothing, a bias
/// add, or bias + ReLU (recording the activation mask for backward).
#[derive(Clone, Copy, Debug)]
pub struct Epilogue<'a> {
    bias: Option<&'a [f32]>,
    relu: bool,
}

impl<'a> Epilogue<'a> {
    /// Plain GEMM write-back.
    pub fn none() -> Epilogue<'static> {
        Epilogue {
            bias: None,
            relu: false,
        }
    }

    /// Adds `bias` to every output row.
    pub fn bias(bias: &'a [f32]) -> Self {
        Epilogue {
            bias: Some(bias),
            relu: false,
        }
    }

    /// Adds `bias`, then clamps negatives, recording the activation mask.
    pub fn bias_relu(bias: &'a [f32]) -> Self {
        Epilogue {
            bias: Some(bias),
            relu: true,
        }
    }

    /// Whether this epilogue produces an activation mask.
    pub fn has_mask(&self) -> bool {
        self.relu
    }
}

/// Serial-vs-parallel and scalar-vs-SIMD dispatch for the training
/// kernels. The SIMD tier is orthogonal to the pool: each worker (or the
/// serial path) independently runs the vectorized kernels when the policy
/// allows it and the host supports AVX2+FMA.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchPolicy {
    row_threshold: usize,
    sparse_work_threshold: usize,
    simd: bool,
}

impl Default for DispatchPolicy {
    fn default() -> Self {
        Self::new(DEFAULT_ROW_THRESHOLD)
    }
}

impl DispatchPolicy {
    /// A policy that parallelizes once an operation spans at least
    /// `row_threshold` rows (clamped to ≥ 1) *and* a multi-worker pool is
    /// available, with the SIMD tier enabled (used when the host has it)
    /// and the default sparse work threshold.
    pub fn new(row_threshold: usize) -> Self {
        Self {
            row_threshold: row_threshold.max(1),
            sparse_work_threshold: DEFAULT_SPARSE_WORK_THRESHOLD,
            simd: true,
        }
    }

    /// This policy with the SIMD tier disabled: every kernel runs the
    /// scalar blocked implementation even on AVX2+FMA hosts. The scalar
    /// tier is the bitwise reference the SIMD contract is tested against.
    pub fn force_scalar(self) -> Self {
        Self {
            simd: false,
            ..self
        }
    }

    /// This policy with a custom sparse work threshold (multiply-adds =
    /// nnz × dense columns) for SpMM pool dispatch; clamped to ≥ 1.
    pub fn with_sparse_work_threshold(self, work: usize) -> Self {
        Self {
            sparse_work_threshold: work.max(1),
            ..self
        }
    }

    /// The configured row threshold.
    pub fn row_threshold(&self) -> usize {
        self.row_threshold
    }

    /// The configured sparse work threshold (multiply-adds).
    pub fn sparse_work_threshold(&self) -> usize {
        self.sparse_work_threshold
    }

    /// Whether this policy's kernels actually run the SIMD tier: the
    /// policy allows it *and* the host supports it (AVX2+FMA, not disabled
    /// via `ARGO_SIMD=off`).
    pub fn simd_enabled(&self) -> bool {
        self.simd && simd::available()
    }

    /// Whether an operation over `rows` rows runs on the pool. This is the
    /// single copy of the heuristic previously duplicated in `nn/model.rs`.
    pub fn goes_parallel(&self, rows: usize, pool: Option<&ThreadPool>) -> bool {
        self.pool_for(rows, pool).is_some()
    }

    /// Whether a sparse operation over `rows` output rows performing
    /// `work` multiply-adds (nnz × dense columns) runs on the pool: both
    /// the row threshold and the sparse work threshold must be met.
    pub fn sparse_goes_parallel(
        &self,
        rows: usize,
        work: usize,
        pool: Option<&ThreadPool>,
    ) -> bool {
        self.sparse_pool_for(rows, work, pool).is_some()
    }

    fn pool_for<'p>(&self, rows: usize, pool: Option<&'p ThreadPool>) -> Option<&'p ThreadPool> {
        pool.filter(|p| p.size() > 1 && rows >= self.row_threshold)
    }

    fn sparse_pool_for<'p>(
        &self,
        rows: usize,
        work: usize,
        pool: Option<&'p ThreadPool>,
    ) -> Option<&'p ThreadPool> {
        self.pool_for(rows, pool)
            .filter(|_| work >= self.sparse_work_threshold)
    }

    /// Dense GEMM kernel of the active tier.
    fn run_gemm(
        &self,
        a: &Matrix,
        rows: Range<usize>,
        b: &Matrix,
        b_row_offset: usize,
        dst: &mut [f32],
        accumulate: bool,
    ) {
        if self.simd {
            simd::gemm_into(a, rows, b, b_row_offset, dst, accumulate);
        } else {
            kernels::gemm_into(a, rows, b, b_row_offset, dst, accumulate);
        }
    }

    /// Quantized-weight GEMM kernel of the active tier.
    fn run_quant_gemm(
        &self,
        a: &Matrix,
        rows: Range<usize>,
        qb: &QuantizedMatrix,
        b_row_offset: usize,
        dst: &mut [f32],
        accumulate: bool,
    ) {
        if self.simd {
            simd::gemm_quant_into(a, rows, qb, b_row_offset, dst, accumulate);
        } else {
            quant::gemm_scalar(a, rows, qb, b_row_offset, dst, accumulate);
        }
    }

    /// Bias/ReLU epilogue of the active tier (bitwise-equal either way).
    fn run_epilogue(&self, dst: &mut [f32], bias: &[f32], relu: bool, mask: Option<&mut [bool]>) {
        if self.simd {
            simd::epilogue_bias_relu(dst, bias, relu, mask);
        } else {
            kernels::epilogue_bias_relu(dst, bias, relu, mask);
        }
    }

    /// Blocked GEMM `a @ b`, no epilogue.
    pub fn gemm(&self, a: &Matrix, b: &Matrix, pool: Option<&ThreadPool>) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        self.gemm_into(a, b, Epilogue::none(), pool, &mut out);
        out
    }

    /// Blocked GEMM `out = a @ b` with the epilogue fused into each
    /// worker's write-back. Returns the ReLU activation mask when the
    /// epilogue has one.
    pub fn gemm_into(
        &self,
        a: &Matrix,
        b: &Matrix,
        epi: Epilogue<'_>,
        pool: Option<&ThreadPool>,
        out: &mut Matrix,
    ) -> Option<Vec<bool>> {
        assert_eq!(a.cols(), b.rows(), "gemm shape mismatch");
        assert_eq!((out.rows(), out.cols()), (a.rows(), b.cols()), "gemm out");
        let m = a.rows();
        let n = b.cols();
        let mut mask = if epi.relu {
            vec![false; m * n]
        } else {
            Vec::new()
        };
        match self.pool_for(m, pool) {
            Some(p) => {
                let out_ptr = out.data_mut().as_mut_ptr() as usize;
                let mask_ptr = mask.as_mut_ptr() as usize;
                // One shadow cell per output row covers `out` and `mask`
                // alike: both are partitioned by the same row ranges.
                let shadow = racecheck::region("tensor.gemm_into", m);
                p.parallel_ranges(m, |range| {
                    racecheck::write(&shadow, range.start, range.len());
                    // SAFETY: ranges partition 0..m, so each worker writes a
                    // disjoint row window of `out`; the pool call blocks
                    // until every worker finishes.
                    let dst = unsafe {
                        std::slice::from_raw_parts_mut(
                            (out_ptr as *mut f32).add(range.start * n),
                            range.len() * n,
                        )
                    };
                    self.run_gemm(a, range.clone(), b, 0, dst, false);
                    if let Some(bias) = epi.bias {
                        let mrow = if epi.relu {
                            // SAFETY: same disjoint row window as `dst`.
                            Some(unsafe {
                                std::slice::from_raw_parts_mut(
                                    (mask_ptr as *mut bool).add(range.start * n),
                                    range.len() * n,
                                )
                            })
                        } else {
                            None
                        };
                        self.run_epilogue(dst, bias, epi.relu, mrow);
                    }
                });
            }
            None => {
                self.run_gemm(a, 0..m, b, 0, out.data_mut(), false);
                if let Some(bias) = epi.bias {
                    self.run_epilogue(
                        out.data_mut(),
                        bias,
                        epi.relu,
                        epi.relu.then_some(mask.as_mut_slice()),
                    );
                }
            }
        }
        epi.relu.then_some(mask)
    }

    /// Fused GraphSAGE GEMM: `out = h[0..n_dst] @ w[0..f] + agg @ w[f..2f]`
    /// plus the epilogue — the `[h ‖ agg]` concatenation is never built.
    /// `w` stores `W_self` stacked above `W_neigh` (`2f × o`), `agg` is
    /// `n_dst × f`, and `h` supplies self features in its first `n_dst`
    /// rows. Returns the ReLU mask when the epilogue has one.
    pub fn sage_gemm_into(
        &self,
        h: &Matrix,
        agg: &Matrix,
        w: &Matrix,
        epi: Epilogue<'_>,
        pool: Option<&ThreadPool>,
        out: &mut Matrix,
    ) -> Option<Vec<bool>> {
        let f = h.cols();
        let n_dst = agg.rows();
        assert_eq!(agg.cols(), f, "sage_gemm agg width");
        assert_eq!(w.rows(), 2 * f, "sage_gemm weight rows");
        assert!(h.rows() >= n_dst, "sage_gemm h rows");
        assert_eq!((out.rows(), out.cols()), (n_dst, w.cols()), "sage out");
        let n = w.cols();
        let mut mask = if epi.relu {
            vec![false; n_dst * n]
        } else {
            Vec::new()
        };
        let run_range = |range: Range<usize>, dst: &mut [f32], mrow: Option<&mut [bool]>| {
            self.run_gemm(h, range.clone(), w, 0, dst, false);
            self.run_gemm(agg, range, w, f, dst, true);
            if let Some(bias) = epi.bias {
                self.run_epilogue(dst, bias, epi.relu, mrow);
            }
        };
        match self.pool_for(n_dst, pool) {
            Some(p) => {
                let out_ptr = out.data_mut().as_mut_ptr() as usize;
                let mask_ptr = mask.as_mut_ptr() as usize;
                // Row-granular shadow covering both `out` and `mask`.
                let shadow = racecheck::region("tensor.sage_gemm_into", n_dst);
                p.parallel_ranges(n_dst, |range| {
                    racecheck::write(&shadow, range.start, range.len());
                    // SAFETY: disjoint output-row windows per worker; the
                    // pool call blocks until every worker finishes.
                    let dst = unsafe {
                        std::slice::from_raw_parts_mut(
                            (out_ptr as *mut f32).add(range.start * n),
                            range.len() * n,
                        )
                    };
                    let mrow = if epi.relu {
                        // SAFETY: same disjoint row window as `dst`.
                        Some(unsafe {
                            std::slice::from_raw_parts_mut(
                                (mask_ptr as *mut bool).add(range.start * n),
                                range.len() * n,
                            )
                        })
                    } else {
                        None
                    };
                    run_range(range, dst, mrow);
                });
            }
            None => run_range(
                0..n_dst,
                out.data_mut(),
                if mask.is_empty() {
                    None
                } else {
                    Some(&mut mask)
                },
            ),
        }
        epi.relu.then_some(mask)
    }

    /// Feature aggregation `adj @ h` (SpMM).
    pub fn aggregate(&self, adj: &SparseMatrix, h: &Matrix, pool: Option<&ThreadPool>) -> Matrix {
        let mut out = Matrix::zeros(adj.rows(), h.cols());
        self.aggregate_into(adj, h, pool, &mut out);
        out
    }

    /// [`DispatchPolicy::aggregate`] into a caller-provided matrix.
    pub fn aggregate_into(
        &self,
        adj: &SparseMatrix,
        h: &Matrix,
        pool: Option<&ThreadPool>,
        out: &mut Matrix,
    ) {
        let work = adj.nnz().saturating_mul(h.cols());
        match self.sparse_pool_for(adj.rows(), work, pool) {
            Some(p) => adj.spmm_pool_into_opt(h, p, out, self.simd),
            None => adj.spmm_into_opt(h, out, self.simd),
        }
    }

    /// [`DispatchPolicy::aggregate_into`] over a **borrowed** arena-backed
    /// adjacency ([`SparseView`]): same serial/pool routing, same row and
    /// sparse-work thresholds, same SIMD tier — the view shares the inner
    /// gather kernel with the owned path, so the two are bitwise-equal.
    pub fn aggregate_view_into(
        &self,
        adj: &SparseView<'_>,
        h: &Matrix,
        pool: Option<&ThreadPool>,
        out: &mut Matrix,
    ) {
        let work = adj.nnz().saturating_mul(h.cols());
        match self.sparse_pool_for(adj.rows(), work, pool) {
            Some(p) => adj.spmm_pool_into_opt(h, p, out, self.simd),
            None => adj.spmm_into_opt(h, out, self.simd),
        }
    }

    /// Backward of aggregation: `adjᵀ @ grad`, as a CSC gather (builds and
    /// caches the mirror on first use).
    pub fn aggregate_transpose(
        &self,
        adj: &SparseMatrix,
        grad: &Matrix,
        pool: Option<&ThreadPool>,
    ) -> Matrix {
        let mut out = Matrix::zeros(adj.cols(), grad.cols());
        self.aggregate_transpose_into(adj, grad, pool, &mut out);
        out
    }

    /// [`DispatchPolicy::aggregate_transpose`] into a caller-provided
    /// matrix.
    pub fn aggregate_transpose_into(
        &self,
        adj: &SparseMatrix,
        grad: &Matrix,
        pool: Option<&ThreadPool>,
        out: &mut Matrix,
    ) {
        // Output rows = adj columns, so that is the parallel dimension.
        let work = adj.nnz().saturating_mul(grad.cols());
        match self.sparse_pool_for(adj.cols(), work, pool) {
            Some(p) => adj.spmm_transpose_csc_pool_into_opt(grad, p, out, self.simd),
            None => adj.spmm_transpose_csc_into_opt(grad, out, self.simd),
        }
    }

    /// Weight gradient `dst[dst_row_offset..][..] = x[x_rows]ᵀ @ grad` —
    /// the reduction-over-rows GEMM of the backward pass. The row offset
    /// lets fused GraphSAGE write the `W_self` and `W_neigh` halves of one
    /// stacked gradient without concatenating inputs.
    ///
    /// Parallelized with per-worker partial accumulators reduced in range
    /// order (deterministic for a fixed pool size, tolerance-level equal to
    /// serial).
    pub fn grad_weights_into(
        &self,
        x: &Matrix,
        x_rows: Range<usize>,
        grad: &Matrix,
        pool: Option<&ThreadPool>,
        dst: &mut Matrix,
        dst_row_offset: usize,
    ) {
        let k = x.cols();
        let n = grad.cols();
        assert_eq!(dst.cols(), n, "grad_weights dst cols");
        assert!(dst_row_offset + k <= dst.rows(), "grad_weights dst rows");
        assert!(x_rows.end <= x.rows(), "grad_weights x range");
        assert_eq!(x_rows.len(), grad.rows(), "grad_weights reduction len");
        let m = x_rows.len();
        let lo = dst_row_offset * n;
        let region = &mut dst.data_mut()[lo..lo + k * n];
        match self.pool_for(m, pool) {
            Some(p) => {
                let partial = p.parallel_map_reduce(
                    m,
                    |r| {
                        let mut buf = vec![0.0f32; k * n];
                        // grad row r.start corresponds to x row
                        // x_rows.start + r.start: slide both windows.
                        self.run_transpose_self(x, grad, r, x_rows.start, &mut buf, false);
                        buf
                    },
                    |mut a, b| {
                        for (av, bv) in a.iter_mut().zip(&b) {
                            *av += bv;
                        }
                        a
                    },
                );
                match partial {
                    Some(buf) => region.copy_from_slice(&buf),
                    None => region.fill(0.0),
                }
            }
            None => {
                self.run_transpose_self(x, grad, 0..m, x_rows.start, region, false);
            }
        }
    }

    /// Weight-gradient kernel of the active tier.
    fn run_transpose_self(
        &self,
        a: &Matrix,
        b: &Matrix,
        rows: Range<usize>,
        a_row_offset: usize,
        dst: &mut [f32],
        accumulate: bool,
    ) {
        if self.simd {
            simd::transpose_self_into(a, b, rows, a_row_offset, dst, accumulate);
        } else {
            kernels::transpose_self_into(a, b, rows, a_row_offset, dst, accumulate);
        }
    }

    /// Convenience allocating form of [`DispatchPolicy::grad_weights_into`]
    /// over all rows: `xᵀ @ grad`.
    pub fn grad_weights(&self, x: &Matrix, grad: &Matrix, pool: Option<&ThreadPool>) -> Matrix {
        let mut out = Matrix::zeros(x.cols(), grad.cols());
        self.grad_weights_into(x, 0..x.rows(), grad, pool, &mut out, 0);
        out
    }

    /// Input gradient `grad @ w[w_rows]ᵀ`: every output element is a dot of
    /// a `grad` row with a `w` row. The row window lets fused GraphSAGE
    /// pull `d_self` / `d_neigh` out of the stacked weight without
    /// splitting it.
    pub fn grad_input(
        &self,
        grad: &Matrix,
        w: &Matrix,
        w_rows: Range<usize>,
        pool: Option<&ThreadPool>,
    ) -> Matrix {
        let mut out = Matrix::zeros(grad.rows(), w_rows.len());
        self.grad_input_into(grad, w, w_rows, pool, &mut out);
        out
    }

    /// [`DispatchPolicy::grad_input`] into a caller-provided matrix.
    pub fn grad_input_into(
        &self,
        grad: &Matrix,
        w: &Matrix,
        w_rows: Range<usize>,
        pool: Option<&ThreadPool>,
        out: &mut Matrix,
    ) {
        assert_eq!(grad.cols(), w.cols(), "grad_input inner dim");
        assert!(w_rows.end <= w.rows(), "grad_input w range");
        let m = grad.rows();
        let n = w_rows.len();
        assert_eq!((out.rows(), out.cols()), (m, n), "grad_input out");
        match self.pool_for(m, pool) {
            Some(p) => {
                let out_ptr = out.data_mut().as_mut_ptr() as usize;
                let shadow = racecheck::region("tensor.grad_input_into", m);
                p.parallel_ranges(m, |range| {
                    racecheck::write(&shadow, range.start, range.len());
                    // SAFETY: disjoint output-row windows per worker; the
                    // pool call blocks until every worker finishes.
                    let dst = unsafe {
                        std::slice::from_raw_parts_mut(
                            (out_ptr as *mut f32).add(range.start * n),
                            range.len() * n,
                        )
                    };
                    self.run_transpose_other(grad, range, w, w_rows.clone(), dst);
                });
            }
            None => {
                self.run_transpose_other(grad, 0..m, w, w_rows, out.data_mut());
            }
        }
    }

    /// Input-gradient kernel of the active tier.
    fn run_transpose_other(
        &self,
        a: &Matrix,
        a_rows: Range<usize>,
        b: &Matrix,
        b_rows: Range<usize>,
        dst: &mut [f32],
    ) {
        if self.simd {
            simd::transpose_other_into(a, a_rows, b, b_rows, dst);
        } else {
            kernels::transpose_other_into(a, a_rows, b, b_rows, dst);
        }
    }

    /// Inference GEMM against quantized weights: `out = a @ qb` with the
    /// epilogue fused. No activation mask is produced — quantized forward
    /// passes never feed a backward pass, so a ReLU epilogue just clamps.
    pub fn quant_gemm_into(
        &self,
        a: &Matrix,
        qb: &QuantizedMatrix,
        epi: Epilogue<'_>,
        pool: Option<&ThreadPool>,
        out: &mut Matrix,
    ) {
        assert_eq!(a.cols(), qb.rows(), "quant_gemm shape mismatch");
        assert_eq!((out.rows(), out.cols()), (a.rows(), qb.cols()), "quant out");
        let m = a.rows();
        let n = qb.cols();
        match self.pool_for(m, pool) {
            Some(p) => {
                let out_ptr = out.data_mut().as_mut_ptr() as usize;
                let shadow = racecheck::region("tensor.quant_gemm_into", m);
                p.parallel_ranges(m, |range| {
                    racecheck::write(&shadow, range.start, range.len());
                    // SAFETY: ranges partition 0..m, so each worker writes a
                    // disjoint row window of `out`; the pool call blocks
                    // until every worker finishes.
                    let dst = unsafe {
                        std::slice::from_raw_parts_mut(
                            (out_ptr as *mut f32).add(range.start * n),
                            range.len() * n,
                        )
                    };
                    self.run_quant_gemm(a, range, qb, 0, dst, false);
                    if let Some(bias) = epi.bias {
                        self.run_epilogue(dst, bias, epi.relu, None);
                    }
                });
            }
            None => {
                self.run_quant_gemm(a, 0..m, qb, 0, out.data_mut(), false);
                if let Some(bias) = epi.bias {
                    self.run_epilogue(out.data_mut(), bias, epi.relu, None);
                }
            }
        }
    }

    /// Fused GraphSAGE inference GEMM against a quantized stacked weight
    /// (`W_self` over `W_neigh`); see [`DispatchPolicy::sage_gemm_into`]
    /// for the layout and [`DispatchPolicy::quant_gemm_into`] for the
    /// no-mask contract.
    pub fn sage_quant_gemm_into(
        &self,
        h: &Matrix,
        agg: &Matrix,
        qw: &QuantizedMatrix,
        epi: Epilogue<'_>,
        pool: Option<&ThreadPool>,
        out: &mut Matrix,
    ) {
        let f = h.cols();
        let n_dst = agg.rows();
        assert_eq!(agg.cols(), f, "sage_quant_gemm agg width");
        assert_eq!(qw.rows(), 2 * f, "sage_quant_gemm weight rows");
        assert!(h.rows() >= n_dst, "sage_quant_gemm h rows");
        assert_eq!((out.rows(), out.cols()), (n_dst, qw.cols()), "sage out");
        let n = qw.cols();
        let run_range = |range: Range<usize>, dst: &mut [f32]| {
            self.run_quant_gemm(h, range.clone(), qw, 0, dst, false);
            self.run_quant_gemm(agg, range, qw, f, dst, true);
            if let Some(bias) = epi.bias {
                self.run_epilogue(dst, bias, epi.relu, None);
            }
        };
        match self.pool_for(n_dst, pool) {
            Some(p) => {
                let out_ptr = out.data_mut().as_mut_ptr() as usize;
                let shadow = racecheck::region("tensor.sage_quant_gemm_into", n_dst);
                p.parallel_ranges(n_dst, |range| {
                    racecheck::write(&shadow, range.start, range.len());
                    // SAFETY: disjoint output-row windows per worker; the
                    // pool call blocks until every worker finishes.
                    let dst = unsafe {
                        std::slice::from_raw_parts_mut(
                            (out_ptr as *mut f32).add(range.start * n),
                            range.len() * n,
                        )
                    };
                    run_range(range, dst);
                });
            }
            None => run_range(0..n_dst, out.data_mut()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool2() -> ThreadPool {
        ThreadPool::new("t", 2)
    }

    #[test]
    fn threshold_boundary_63_64_65() {
        let policy = DispatchPolicy::default();
        let pool = pool2();
        assert!(!policy.goes_parallel(63, Some(&pool)));
        assert!(policy.goes_parallel(64, Some(&pool)));
        assert!(policy.goes_parallel(65, Some(&pool)));
    }

    #[test]
    fn no_pool_or_single_worker_stays_serial() {
        let policy = DispatchPolicy::default();
        assert!(!policy.goes_parallel(1_000_000, None));
        let single = ThreadPool::new("t", 1);
        assert!(!policy.goes_parallel(1_000_000, Some(&single)));
    }

    #[test]
    fn custom_threshold_moves_the_boundary() {
        let pool = pool2();
        let policy = DispatchPolicy::new(10);
        assert!(!policy.goes_parallel(9, Some(&pool)));
        assert!(policy.goes_parallel(10, Some(&pool)));
        // Zero threshold is clamped: even a 1-row op may go parallel but
        // the policy never divides by zero or panics.
        let zero = DispatchPolicy::new(0);
        assert_eq!(zero.row_threshold(), 1);
        assert!(zero.goes_parallel(1, Some(&pool)));
    }

    #[test]
    fn gemm_serial_and_parallel_match_naive() {
        // Scalar tier: bitwise contract against the naive kernel.
        let pool = pool2();
        let policy = DispatchPolicy::new(1).force_scalar();
        let a = Matrix::xavier(70, 17, 1);
        let b = Matrix::xavier(17, 11, 2);
        let naive = a.matmul(&b);
        let serial = DispatchPolicy::default().force_scalar().gemm(&a, &b, None);
        let par = policy.gemm(&a, &b, Some(&pool));
        assert_eq!(naive.data(), serial.data());
        assert_eq!(naive.data(), par.data());
    }

    #[test]
    fn simd_gemm_matches_scalar_within_tolerance_and_partition_invariant() {
        let pool = pool2();
        let a = Matrix::xavier(70, 17, 1);
        let b = Matrix::xavier(17, 11, 2);
        let scalar = DispatchPolicy::default().force_scalar().gemm(&a, &b, None);
        let simd_serial = DispatchPolicy::default().gemm(&a, &b, None);
        let simd_par = DispatchPolicy::new(1).gemm(&a, &b, Some(&pool));
        // FMA reassociates each k-step's rounding: tolerance contract.
        for (s, v) in scalar.data().iter().zip(simd_serial.data()) {
            assert!((s - v).abs() <= 1e-5 * 1.0f32.max(s.abs()));
        }
        // But the SIMD tier itself is partition-invariant: pool == serial
        // bitwise, because per-element FMA order ignores the row split.
        assert_eq!(simd_serial.data(), simd_par.data());
    }

    #[test]
    fn simd_enabled_reflects_policy_and_host() {
        assert!(!DispatchPolicy::default().force_scalar().simd_enabled());
        // With the tier allowed, enablement equals host support.
        assert_eq!(
            DispatchPolicy::default().simd_enabled(),
            crate::simd::available()
        );
    }

    #[test]
    fn gemm_epilogue_fuses_bias_and_relu() {
        let pool = pool2();
        for use_pool in [false, true] {
            let policy = DispatchPolicy::new(1).force_scalar();
            let a = Matrix::xavier(40, 8, 3);
            let b = Matrix::xavier(8, 6, 4);
            let bias: Vec<f32> = (0..6).map(|i| (i as f32) * 0.3 - 0.8).collect();
            let p = use_pool.then_some(&pool);
            let mut out = Matrix::zeros(40, 6);
            let mask = policy.gemm_into(&a, &b, Epilogue::bias_relu(&bias), p, &mut out);
            let mask = mask.expect("relu epilogue yields mask");
            // Reference: unfused ops.
            let mut want = a.matmul(&b);
            for r in 0..want.rows() {
                for (c, &bc) in bias.iter().enumerate() {
                    let z = want.get(r, c) + bc;
                    let idx = r * 6 + c;
                    assert_eq!(mask[idx], z > 0.0, "mask at {r},{c} pool={use_pool}");
                    want.set(r, c, if z > 0.0 { z } else { 0.0 });
                }
            }
            assert_eq!(out.data(), want.data(), "pool={use_pool}");
        }
    }

    #[test]
    fn sage_gemm_equals_concat_reference() {
        let pool = pool2();
        let f = 5;
        let o = 4;
        let n_dst = 30;
        let h = Matrix::xavier(50, f, 5); // more src rows than dst
        let agg = Matrix::xavier(n_dst, f, 6);
        let w = Matrix::xavier(2 * f, o, 7);
        let bias: Vec<f32> = (0..o).map(|i| 0.1 * i as f32 - 0.15).collect();
        // Reference: materialize cat = [h_dst | agg] and one GEMM.
        let h_dst = h.gather_rows(&(0..n_dst as u32).collect::<Vec<_>>());
        let cat = h_dst.concat_cols(&agg);
        let mut want = cat.matmul(&w);
        let mut want_mask = vec![false; n_dst * o];
        for r in 0..n_dst {
            for c in 0..o {
                let z = want.get(r, c) + bias[c];
                want_mask[r * o + c] = z > 0.0;
                want.set(r, c, if z > 0.0 { z } else { 0.0 });
            }
        }
        for (use_pool, use_simd) in [(false, false), (true, false), (false, true), (true, true)] {
            let mut policy = DispatchPolicy::new(1);
            if !use_simd {
                policy = policy.force_scalar();
            }
            let p = use_pool.then_some(&pool);
            let mut out = Matrix::zeros(n_dst, o);
            let mask = policy
                .sage_gemm_into(&h, &agg, &w, Epilogue::bias_relu(&bias), p, &mut out)
                .expect("mask");
            if !use_simd {
                assert_eq!(mask, want_mask, "pool={use_pool}");
            }
            for (g, w_) in out.data().iter().zip(want.data()) {
                assert!((g - w_).abs() <= 1e-5, "pool={use_pool} simd={use_simd}");
            }
        }
    }

    fn ragged_adj() -> SparseMatrix {
        let rows = 70;
        let cols = 40;
        let mut indptr = vec![0usize];
        let mut indices = Vec::new();
        let mut vals = Vec::new();
        for i in 0..rows {
            for j in 0..cols {
                if (i * 3 + j * 7) % 11 == 0 {
                    indices.push(j as u32);
                    vals.push(((i + 2 * j) % 5) as f32 * 0.4 - 0.6);
                }
            }
            indptr.push(indices.len());
        }
        SparseMatrix::new(rows, cols, indptr, indices, Some(vals))
    }

    #[test]
    fn aggregate_and_transpose_match_naive() {
        let pool = pool2();
        let adj = ragged_adj();
        let h = Matrix::xavier(adj.cols(), 9, 8);
        let grad = Matrix::xavier(adj.rows(), 9, 9);
        for (policy, p) in [
            (DispatchPolicy::default(), None),
            // Tiny work: drop the sparse work threshold so the pool path
            // is actually exercised.
            (
                DispatchPolicy::new(1).with_sparse_work_threshold(1),
                Some(&pool),
            ),
            (
                DispatchPolicy::new(1)
                    .with_sparse_work_threshold(1)
                    .force_scalar(),
                Some(&pool),
            ),
        ] {
            // The SpMM gather is bitwise across tiers (mul+add lanes).
            let agg = policy.aggregate(&adj, &h, p);
            assert_eq!(agg.data(), adj.spmm(&h).data());
            let back = policy.aggregate_transpose(&adj, &grad, p);
            assert_eq!(back.data(), adj.spmm_transpose(&grad).data());
        }
    }

    #[test]
    fn aggregate_view_bitwise_matches_owned_across_tiers() {
        let pool = pool2();
        let adj = ragged_adj();
        let indptr: Vec<u32> = adj.indptr().iter().map(|&p| p as u32).collect();
        let view = SparseView::new(adj.rows(), adj.cols(), &indptr, adj.indices(), adj.values());
        let h = Matrix::xavier(adj.cols(), 9, 8);
        for (policy, p) in [
            (DispatchPolicy::default(), None),
            (
                DispatchPolicy::new(1).with_sparse_work_threshold(1),
                Some(&pool),
            ),
            (
                DispatchPolicy::new(1)
                    .with_sparse_work_threshold(1)
                    .force_scalar(),
                Some(&pool),
            ),
        ] {
            let owned = policy.aggregate(&adj, &h, p);
            let mut got = Matrix::zeros(adj.rows(), h.cols());
            policy.aggregate_view_into(&view, &h, p, &mut got);
            assert_eq!(got.data(), owned.data(), "view diverged from owned path");
        }
    }

    #[test]
    fn sparse_work_threshold_boundary() {
        let pool = pool2();
        let policy = DispatchPolicy::default();
        let t = policy.sparse_work_threshold();
        assert_eq!(t, DEFAULT_SPARSE_WORK_THRESHOLD);
        // Row threshold satisfied; work decides.
        assert!(!policy.sparse_goes_parallel(100, t - 1, Some(&pool)));
        assert!(policy.sparse_goes_parallel(100, t, Some(&pool)));
        assert!(policy.sparse_goes_parallel(100, t + 1, Some(&pool)));
        // Both thresholds must hold.
        assert!(!policy.sparse_goes_parallel(63, t, Some(&pool)));
        assert!(!policy.sparse_goes_parallel(100, t, None));
        // The benched spmm shape (4096 rows, nnz≈16/row, 64 features) sat
        // at 0.86× serial: it must now stay serial under the default.
        let benched_work = 4096 * 16 * 64;
        assert!(benched_work < t, "crossover sits above the benched shape");
        assert!(!policy.sparse_goes_parallel(4096, benched_work, Some(&pool)));
        // A custom threshold moves the boundary, clamped to ≥ 1.
        let low = policy.with_sparse_work_threshold(0);
        assert_eq!(low.sparse_work_threshold(), 1);
        assert!(low.sparse_goes_parallel(4096, benched_work, Some(&pool)));
    }

    #[test]
    fn grad_weights_serial_exact_parallel_tolerance() {
        let pool = pool2();
        let x = Matrix::xavier(90, 7, 10);
        let grad = Matrix::xavier(90, 5, 11);
        let naive = x.matmul_transpose_self(&grad);
        let serial = DispatchPolicy::default()
            .force_scalar()
            .grad_weights(&x, &grad, None);
        assert_eq!(naive.data(), serial.data());
        let par = DispatchPolicy::new(1).grad_weights(&x, &grad, Some(&pool));
        for (a, b) in naive.data().iter().zip(par.data()) {
            assert!((a - b).abs() <= 1e-5);
        }
    }

    #[test]
    fn grad_weights_row_offset_writes_stacked_halves() {
        // The fused-SAGE layout: dW is 2f x o; the top half comes from
        // h_dst, the bottom from agg, with no concatenation.
        let f = 4;
        let o = 3;
        let n_dst = 20;
        let policy = DispatchPolicy::default();
        let h = Matrix::xavier(35, f, 12);
        let agg = Matrix::xavier(n_dst, f, 13);
        let grad = Matrix::xavier(n_dst, o, 14);
        let mut dw = Matrix::zeros(2 * f, o);
        policy.grad_weights_into(&h, 0..n_dst, &grad, None, &mut dw, 0);
        policy.grad_weights_into(&agg, 0..n_dst, &grad, None, &mut dw, f);
        let h_dst = h.gather_rows(&(0..n_dst as u32).collect::<Vec<_>>());
        let want = h_dst.concat_cols(&agg).matmul_transpose_self(&grad);
        for (a, b) in dw.data().iter().zip(want.data()) {
            assert!((a - b).abs() <= 1e-5);
        }
    }

    #[test]
    fn grad_input_window_equals_split_reference() {
        let pool = pool2();
        let f = 4;
        let o = 3;
        let grad = Matrix::xavier(80, o, 15);
        let w = Matrix::xavier(2 * f, o, 16);
        let naive_full = grad.matmul_transpose_other(&w);
        for (policy, p) in [
            (DispatchPolicy::default().force_scalar(), None),
            (DispatchPolicy::new(1).force_scalar(), Some(&pool)),
        ] {
            let full = policy.grad_input(&grad, &w, 0..2 * f, p);
            assert_eq!(full.data(), naive_full.data());
            // Row windows = columns of the split reference.
            let d_self = policy.grad_input(&grad, &w, 0..f, p);
            let d_neigh = policy.grad_input(&grad, &w, f..2 * f, p);
            let (want_self, want_neigh) = naive_full.split_cols(f);
            assert_eq!(d_self.data(), want_self.data());
            assert_eq!(d_neigh.data(), want_neigh.data());
        }
    }

    #[test]
    fn quant_gemm_tracks_dequantized_reference() {
        let pool = pool2();
        let a = Matrix::xavier(70, 12, 20);
        let b = Matrix::xavier(12, 9, 21);
        let bias: Vec<f32> = (0..9).map(|i| 0.2 * i as f32 - 0.7).collect();
        for kind in [crate::QuantKind::Bf16, crate::QuantKind::Int8] {
            let qb = QuantizedMatrix::quantize(&b, kind);
            let deq = qb.dequantize();
            for (use_pool, use_simd) in [(false, false), (true, false), (false, true), (true, true)]
            {
                let mut policy = DispatchPolicy::new(1);
                if !use_simd {
                    policy = policy.force_scalar();
                }
                let p = use_pool.then_some(&pool);
                // Reference: the same policy tier on the dequantized dense
                // weights with a mask-free clamp.
                let mut want = Matrix::zeros(70, 9);
                policy.gemm_into(&a, &deq, Epilogue::none(), p, &mut want);
                for r in 0..70 {
                    for (c, b) in bias.iter().enumerate() {
                        let z = want.get(r, c) + b;
                        want.set(r, c, if z > 0.0 { z } else { 0.0 });
                    }
                }
                let mut out = Matrix::zeros(70, 9);
                policy.quant_gemm_into(&a, &qb, Epilogue::bias_relu(&bias), p, &mut out);
                for (g, w) in out.data().iter().zip(want.data()) {
                    assert!(
                        (g - w).abs() <= 1e-5 * 1.0f32.max(w.abs()),
                        "{kind:?} pool={use_pool} simd={use_simd}: {g} vs {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn sage_quant_gemm_tracks_f32_sage_gemm() {
        let pool = pool2();
        let f = 6;
        let o = 5;
        let n_dst = 40;
        let h = Matrix::xavier(55, f, 22);
        let agg = Matrix::xavier(n_dst, f, 23);
        let w = Matrix::xavier(2 * f, o, 24);
        let bias: Vec<f32> = (0..o).map(|i| 0.1 * i as f32 - 0.2).collect();
        let policy = DispatchPolicy::new(1);
        let mut want = Matrix::zeros(n_dst, o);
        policy.sage_gemm_into(&h, &agg, &w, Epilogue::bias_relu(&bias), None, &mut want);
        for kind in [crate::QuantKind::Bf16, crate::QuantKind::Int8] {
            let qw = QuantizedMatrix::quantize(&w, kind);
            // bf16 keeps ~8 mantissa bits, int8 ~7: both stay within a few
            // percent on these magnitudes.
            let tol = match kind {
                crate::QuantKind::Bf16 => 0.02f32,
                crate::QuantKind::Int8 => 0.08,
            };
            for p in [None, Some(&pool)] {
                let mut out = Matrix::zeros(n_dst, o);
                policy.sage_quant_gemm_into(&h, &agg, &qw, Epilogue::bias_relu(&bias), p, &mut out);
                for (g, w_) in out.data().iter().zip(want.data()) {
                    assert!(
                        (g - w_).abs() <= tol * 1.0f32.max(w_.abs()),
                        "{kind:?}: {g} vs {w_}"
                    );
                }
            }
        }
    }
}
