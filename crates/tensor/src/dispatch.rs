//! The kernel dispatch policy: one place that decides serial vs
//! pool-parallel and routes every model-side matmul/SpMM through the
//! blocked kernels.
//!
//! Before this module, `nn/model.rs` carried a hard-coded
//! `a.rows() >= 64 && pool.size() > 1` heuristic copy-pasted across private
//! helpers. [`DispatchPolicy`] hoists that decision behind a tunable row
//! threshold and exposes the *semantic* operations a GNN layer needs —
//! `gemm`, `aggregate`, `grad_weights`, … — so callers in `nn`/`engine`
//! never touch the raw serial kernels (enforced by the `kernel-dispatch`
//! argo-lint rule).
//!
//! Parallelization strategies per operation:
//!
//! * forward GEMM / SpMM / input gradients — partition **output rows**
//!   across workers; each worker writes a disjoint row window.
//! * transposed SpMM — gather over the cached [`crate::sparse::CscMirror`]
//!   (output rows again disjoint).
//! * weight gradients (`dW = Xᵀ dY`, a reduction over rows) — per-worker
//!   partial accumulators folded **in range order** on the caller via
//!   [`ThreadPool::parallel_map_reduce`], so results are deterministic for
//!   a fixed pool size.

use std::ops::Range;

use argo_rt::{racecheck, ThreadPool};

use crate::dense::Matrix;
use crate::kernels;
use crate::sparse::SparseMatrix;

/// Default minimum number of rows before a kernel goes pool-parallel —
/// below this the fork/join overhead outweighs the work.
pub const DEFAULT_ROW_THRESHOLD: usize = 64;

/// What a GEMM does to its output as it is written back: nothing, a bias
/// add, or bias + ReLU (recording the activation mask for backward).
#[derive(Clone, Copy, Debug)]
pub struct Epilogue<'a> {
    bias: Option<&'a [f32]>,
    relu: bool,
}

impl<'a> Epilogue<'a> {
    /// Plain GEMM write-back.
    pub fn none() -> Epilogue<'static> {
        Epilogue {
            bias: None,
            relu: false,
        }
    }

    /// Adds `bias` to every output row.
    pub fn bias(bias: &'a [f32]) -> Self {
        Epilogue {
            bias: Some(bias),
            relu: false,
        }
    }

    /// Adds `bias`, then clamps negatives, recording the activation mask.
    pub fn bias_relu(bias: &'a [f32]) -> Self {
        Epilogue {
            bias: Some(bias),
            relu: true,
        }
    }

    /// Whether this epilogue produces an activation mask.
    pub fn has_mask(&self) -> bool {
        self.relu
    }
}

/// Serial-vs-parallel dispatch for the training kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchPolicy {
    row_threshold: usize,
}

impl Default for DispatchPolicy {
    fn default() -> Self {
        Self::new(DEFAULT_ROW_THRESHOLD)
    }
}

impl DispatchPolicy {
    /// A policy that parallelizes once an operation spans at least
    /// `row_threshold` rows (clamped to ≥ 1) *and* a multi-worker pool is
    /// available.
    pub fn new(row_threshold: usize) -> Self {
        Self {
            row_threshold: row_threshold.max(1),
        }
    }

    /// The configured row threshold.
    pub fn row_threshold(&self) -> usize {
        self.row_threshold
    }

    /// Whether an operation over `rows` rows runs on the pool. This is the
    /// single copy of the heuristic previously duplicated in `nn/model.rs`.
    pub fn goes_parallel(&self, rows: usize, pool: Option<&ThreadPool>) -> bool {
        self.pool_for(rows, pool).is_some()
    }

    fn pool_for<'p>(&self, rows: usize, pool: Option<&'p ThreadPool>) -> Option<&'p ThreadPool> {
        pool.filter(|p| p.size() > 1 && rows >= self.row_threshold)
    }

    /// Blocked GEMM `a @ b`, no epilogue.
    pub fn gemm(&self, a: &Matrix, b: &Matrix, pool: Option<&ThreadPool>) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        self.gemm_into(a, b, Epilogue::none(), pool, &mut out);
        out
    }

    /// Blocked GEMM `out = a @ b` with the epilogue fused into each
    /// worker's write-back. Returns the ReLU activation mask when the
    /// epilogue has one.
    pub fn gemm_into(
        &self,
        a: &Matrix,
        b: &Matrix,
        epi: Epilogue<'_>,
        pool: Option<&ThreadPool>,
        out: &mut Matrix,
    ) -> Option<Vec<bool>> {
        assert_eq!(a.cols(), b.rows(), "gemm shape mismatch");
        assert_eq!((out.rows(), out.cols()), (a.rows(), b.cols()), "gemm out");
        let m = a.rows();
        let n = b.cols();
        let mut mask = if epi.relu {
            vec![false; m * n]
        } else {
            Vec::new()
        };
        match self.pool_for(m, pool) {
            Some(p) => {
                let out_ptr = out.data_mut().as_mut_ptr() as usize;
                let mask_ptr = mask.as_mut_ptr() as usize;
                // One shadow cell per output row covers `out` and `mask`
                // alike: both are partitioned by the same row ranges.
                let shadow = racecheck::region("tensor.gemm_into", m);
                p.parallel_ranges(m, |range| {
                    racecheck::write(&shadow, range.start, range.len());
                    // SAFETY: ranges partition 0..m, so each worker writes a
                    // disjoint row window of `out`; the pool call blocks
                    // until every worker finishes.
                    let dst = unsafe {
                        std::slice::from_raw_parts_mut(
                            (out_ptr as *mut f32).add(range.start * n),
                            range.len() * n,
                        )
                    };
                    kernels::gemm_into(a, range.clone(), b, 0, dst, false);
                    if let Some(bias) = epi.bias {
                        let mrow = if epi.relu {
                            // SAFETY: same disjoint row window as `dst`.
                            Some(unsafe {
                                std::slice::from_raw_parts_mut(
                                    (mask_ptr as *mut bool).add(range.start * n),
                                    range.len() * n,
                                )
                            })
                        } else {
                            None
                        };
                        kernels::epilogue_bias_relu(dst, bias, epi.relu, mrow);
                    }
                });
            }
            None => {
                kernels::gemm_into(a, 0..m, b, 0, out.data_mut(), false);
                if let Some(bias) = epi.bias {
                    kernels::epilogue_bias_relu(
                        out.data_mut(),
                        bias,
                        epi.relu,
                        epi.relu.then_some(mask.as_mut_slice()),
                    );
                }
            }
        }
        epi.relu.then_some(mask)
    }

    /// Fused GraphSAGE GEMM: `out = h[0..n_dst] @ w[0..f] + agg @ w[f..2f]`
    /// plus the epilogue — the `[h ‖ agg]` concatenation is never built.
    /// `w` stores `W_self` stacked above `W_neigh` (`2f × o`), `agg` is
    /// `n_dst × f`, and `h` supplies self features in its first `n_dst`
    /// rows. Returns the ReLU mask when the epilogue has one.
    pub fn sage_gemm_into(
        &self,
        h: &Matrix,
        agg: &Matrix,
        w: &Matrix,
        epi: Epilogue<'_>,
        pool: Option<&ThreadPool>,
        out: &mut Matrix,
    ) -> Option<Vec<bool>> {
        let f = h.cols();
        let n_dst = agg.rows();
        assert_eq!(agg.cols(), f, "sage_gemm agg width");
        assert_eq!(w.rows(), 2 * f, "sage_gemm weight rows");
        assert!(h.rows() >= n_dst, "sage_gemm h rows");
        assert_eq!((out.rows(), out.cols()), (n_dst, w.cols()), "sage out");
        let n = w.cols();
        let mut mask = if epi.relu {
            vec![false; n_dst * n]
        } else {
            Vec::new()
        };
        let run_range = |range: Range<usize>, dst: &mut [f32], mrow: Option<&mut [bool]>| {
            kernels::gemm_into(h, range.clone(), w, 0, dst, false);
            kernels::gemm_into(agg, range, w, f, dst, true);
            if let Some(bias) = epi.bias {
                kernels::epilogue_bias_relu(dst, bias, epi.relu, mrow);
            }
        };
        match self.pool_for(n_dst, pool) {
            Some(p) => {
                let out_ptr = out.data_mut().as_mut_ptr() as usize;
                let mask_ptr = mask.as_mut_ptr() as usize;
                // Row-granular shadow covering both `out` and `mask`.
                let shadow = racecheck::region("tensor.sage_gemm_into", n_dst);
                p.parallel_ranges(n_dst, |range| {
                    racecheck::write(&shadow, range.start, range.len());
                    // SAFETY: disjoint output-row windows per worker; the
                    // pool call blocks until every worker finishes.
                    let dst = unsafe {
                        std::slice::from_raw_parts_mut(
                            (out_ptr as *mut f32).add(range.start * n),
                            range.len() * n,
                        )
                    };
                    let mrow = if epi.relu {
                        // SAFETY: same disjoint row window as `dst`.
                        Some(unsafe {
                            std::slice::from_raw_parts_mut(
                                (mask_ptr as *mut bool).add(range.start * n),
                                range.len() * n,
                            )
                        })
                    } else {
                        None
                    };
                    run_range(range, dst, mrow);
                });
            }
            None => run_range(
                0..n_dst,
                out.data_mut(),
                if mask.is_empty() {
                    None
                } else {
                    Some(&mut mask)
                },
            ),
        }
        epi.relu.then_some(mask)
    }

    /// Feature aggregation `adj @ h` (SpMM).
    pub fn aggregate(&self, adj: &SparseMatrix, h: &Matrix, pool: Option<&ThreadPool>) -> Matrix {
        let mut out = Matrix::zeros(adj.rows(), h.cols());
        self.aggregate_into(adj, h, pool, &mut out);
        out
    }

    /// [`DispatchPolicy::aggregate`] into a caller-provided matrix.
    pub fn aggregate_into(
        &self,
        adj: &SparseMatrix,
        h: &Matrix,
        pool: Option<&ThreadPool>,
        out: &mut Matrix,
    ) {
        match self.pool_for(adj.rows(), pool) {
            Some(p) => adj.spmm_pool_into(h, p, out),
            None => adj.spmm_into(h, out),
        }
    }

    /// Backward of aggregation: `adjᵀ @ grad`, as a CSC gather (builds and
    /// caches the mirror on first use).
    pub fn aggregate_transpose(
        &self,
        adj: &SparseMatrix,
        grad: &Matrix,
        pool: Option<&ThreadPool>,
    ) -> Matrix {
        let mut out = Matrix::zeros(adj.cols(), grad.cols());
        self.aggregate_transpose_into(adj, grad, pool, &mut out);
        out
    }

    /// [`DispatchPolicy::aggregate_transpose`] into a caller-provided
    /// matrix.
    pub fn aggregate_transpose_into(
        &self,
        adj: &SparseMatrix,
        grad: &Matrix,
        pool: Option<&ThreadPool>,
        out: &mut Matrix,
    ) {
        // Output rows = adj columns, so that is the parallel dimension.
        match self.pool_for(adj.cols(), pool) {
            Some(p) => adj.spmm_transpose_csc_pool_into(grad, p, out),
            None => adj.spmm_transpose_csc_into(grad, out),
        }
    }

    /// Weight gradient `dst[dst_row_offset..][..] = x[x_rows]ᵀ @ grad` —
    /// the reduction-over-rows GEMM of the backward pass. The row offset
    /// lets fused GraphSAGE write the `W_self` and `W_neigh` halves of one
    /// stacked gradient without concatenating inputs.
    ///
    /// Parallelized with per-worker partial accumulators reduced in range
    /// order (deterministic for a fixed pool size, tolerance-level equal to
    /// serial).
    pub fn grad_weights_into(
        &self,
        x: &Matrix,
        x_rows: Range<usize>,
        grad: &Matrix,
        pool: Option<&ThreadPool>,
        dst: &mut Matrix,
        dst_row_offset: usize,
    ) {
        let k = x.cols();
        let n = grad.cols();
        assert_eq!(dst.cols(), n, "grad_weights dst cols");
        assert!(dst_row_offset + k <= dst.rows(), "grad_weights dst rows");
        assert!(x_rows.end <= x.rows(), "grad_weights x range");
        assert_eq!(x_rows.len(), grad.rows(), "grad_weights reduction len");
        let m = x_rows.len();
        let lo = dst_row_offset * n;
        let region = &mut dst.data_mut()[lo..lo + k * n];
        match self.pool_for(m, pool) {
            Some(p) => {
                let partial = p.parallel_map_reduce(
                    m,
                    |r| {
                        let mut buf = vec![0.0f32; k * n];
                        // grad row r.start corresponds to x row
                        // x_rows.start + r.start: slide both windows.
                        kernels::transpose_self_into(x, grad, r, x_rows.start, &mut buf, false);
                        buf
                    },
                    |mut a, b| {
                        for (av, bv) in a.iter_mut().zip(&b) {
                            *av += bv;
                        }
                        a
                    },
                );
                match partial {
                    Some(buf) => region.copy_from_slice(&buf),
                    None => region.fill(0.0),
                }
            }
            None => {
                kernels::transpose_self_into(x, grad, 0..m, x_rows.start, region, false);
            }
        }
    }

    /// Convenience allocating form of [`DispatchPolicy::grad_weights_into`]
    /// over all rows: `xᵀ @ grad`.
    pub fn grad_weights(&self, x: &Matrix, grad: &Matrix, pool: Option<&ThreadPool>) -> Matrix {
        let mut out = Matrix::zeros(x.cols(), grad.cols());
        self.grad_weights_into(x, 0..x.rows(), grad, pool, &mut out, 0);
        out
    }

    /// Input gradient `grad @ w[w_rows]ᵀ`: every output element is a dot of
    /// a `grad` row with a `w` row. The row window lets fused GraphSAGE
    /// pull `d_self` / `d_neigh` out of the stacked weight without
    /// splitting it.
    pub fn grad_input(
        &self,
        grad: &Matrix,
        w: &Matrix,
        w_rows: Range<usize>,
        pool: Option<&ThreadPool>,
    ) -> Matrix {
        let mut out = Matrix::zeros(grad.rows(), w_rows.len());
        self.grad_input_into(grad, w, w_rows, pool, &mut out);
        out
    }

    /// [`DispatchPolicy::grad_input`] into a caller-provided matrix.
    pub fn grad_input_into(
        &self,
        grad: &Matrix,
        w: &Matrix,
        w_rows: Range<usize>,
        pool: Option<&ThreadPool>,
        out: &mut Matrix,
    ) {
        assert_eq!(grad.cols(), w.cols(), "grad_input inner dim");
        assert!(w_rows.end <= w.rows(), "grad_input w range");
        let m = grad.rows();
        let n = w_rows.len();
        assert_eq!((out.rows(), out.cols()), (m, n), "grad_input out");
        match self.pool_for(m, pool) {
            Some(p) => {
                let out_ptr = out.data_mut().as_mut_ptr() as usize;
                let shadow = racecheck::region("tensor.grad_input_into", m);
                p.parallel_ranges(m, |range| {
                    racecheck::write(&shadow, range.start, range.len());
                    // SAFETY: disjoint output-row windows per worker; the
                    // pool call blocks until every worker finishes.
                    let dst = unsafe {
                        std::slice::from_raw_parts_mut(
                            (out_ptr as *mut f32).add(range.start * n),
                            range.len() * n,
                        )
                    };
                    kernels::transpose_other_into(grad, range, w, w_rows.clone(), dst);
                });
            }
            None => {
                kernels::transpose_other_into(grad, 0..m, w, w_rows, out.data_mut());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool2() -> ThreadPool {
        ThreadPool::new("t", 2)
    }

    #[test]
    fn threshold_boundary_63_64_65() {
        let policy = DispatchPolicy::default();
        let pool = pool2();
        assert!(!policy.goes_parallel(63, Some(&pool)));
        assert!(policy.goes_parallel(64, Some(&pool)));
        assert!(policy.goes_parallel(65, Some(&pool)));
    }

    #[test]
    fn no_pool_or_single_worker_stays_serial() {
        let policy = DispatchPolicy::default();
        assert!(!policy.goes_parallel(1_000_000, None));
        let single = ThreadPool::new("t", 1);
        assert!(!policy.goes_parallel(1_000_000, Some(&single)));
    }

    #[test]
    fn custom_threshold_moves_the_boundary() {
        let pool = pool2();
        let policy = DispatchPolicy::new(10);
        assert!(!policy.goes_parallel(9, Some(&pool)));
        assert!(policy.goes_parallel(10, Some(&pool)));
        // Zero threshold is clamped: even a 1-row op may go parallel but
        // the policy never divides by zero or panics.
        let zero = DispatchPolicy::new(0);
        assert_eq!(zero.row_threshold(), 1);
        assert!(zero.goes_parallel(1, Some(&pool)));
    }

    #[test]
    fn gemm_serial_and_parallel_match_naive() {
        let pool = pool2();
        let policy = DispatchPolicy::new(1);
        let a = Matrix::xavier(70, 17, 1);
        let b = Matrix::xavier(17, 11, 2);
        let naive = a.matmul(&b);
        let serial = DispatchPolicy::default().gemm(&a, &b, None);
        let par = policy.gemm(&a, &b, Some(&pool));
        assert_eq!(naive.data(), serial.data());
        assert_eq!(naive.data(), par.data());
    }

    #[test]
    fn gemm_epilogue_fuses_bias_and_relu() {
        let pool = pool2();
        for use_pool in [false, true] {
            let policy = DispatchPolicy::new(1);
            let a = Matrix::xavier(40, 8, 3);
            let b = Matrix::xavier(8, 6, 4);
            let bias: Vec<f32> = (0..6).map(|i| (i as f32) * 0.3 - 0.8).collect();
            let p = use_pool.then_some(&pool);
            let mut out = Matrix::zeros(40, 6);
            let mask = policy.gemm_into(&a, &b, Epilogue::bias_relu(&bias), p, &mut out);
            let mask = mask.expect("relu epilogue yields mask");
            // Reference: unfused ops.
            let mut want = a.matmul(&b);
            for r in 0..want.rows() {
                for (c, &bc) in bias.iter().enumerate() {
                    let z = want.get(r, c) + bc;
                    let idx = r * 6 + c;
                    assert_eq!(mask[idx], z > 0.0, "mask at {r},{c} pool={use_pool}");
                    want.set(r, c, if z > 0.0 { z } else { 0.0 });
                }
            }
            assert_eq!(out.data(), want.data(), "pool={use_pool}");
        }
    }

    #[test]
    fn sage_gemm_equals_concat_reference() {
        let pool = pool2();
        let f = 5;
        let o = 4;
        let n_dst = 30;
        let h = Matrix::xavier(50, f, 5); // more src rows than dst
        let agg = Matrix::xavier(n_dst, f, 6);
        let w = Matrix::xavier(2 * f, o, 7);
        let bias: Vec<f32> = (0..o).map(|i| 0.1 * i as f32 - 0.15).collect();
        // Reference: materialize cat = [h_dst | agg] and one GEMM.
        let h_dst = h.gather_rows(&(0..n_dst as u32).collect::<Vec<_>>());
        let cat = h_dst.concat_cols(&agg);
        let mut want = cat.matmul(&w);
        let mut want_mask = vec![false; n_dst * o];
        for r in 0..n_dst {
            for c in 0..o {
                let z = want.get(r, c) + bias[c];
                want_mask[r * o + c] = z > 0.0;
                want.set(r, c, if z > 0.0 { z } else { 0.0 });
            }
        }
        for use_pool in [false, true] {
            let policy = DispatchPolicy::new(1);
            let p = use_pool.then_some(&pool);
            let mut out = Matrix::zeros(n_dst, o);
            let mask = policy
                .sage_gemm_into(&h, &agg, &w, Epilogue::bias_relu(&bias), p, &mut out)
                .expect("mask");
            assert_eq!(mask, want_mask, "pool={use_pool}");
            for (g, w_) in out.data().iter().zip(want.data()) {
                assert!((g - w_).abs() <= 1e-5, "pool={use_pool}");
            }
        }
    }

    fn ragged_adj() -> SparseMatrix {
        let rows = 70;
        let cols = 40;
        let mut indptr = vec![0usize];
        let mut indices = Vec::new();
        let mut vals = Vec::new();
        for i in 0..rows {
            for j in 0..cols {
                if (i * 3 + j * 7) % 11 == 0 {
                    indices.push(j as u32);
                    vals.push(((i + 2 * j) % 5) as f32 * 0.4 - 0.6);
                }
            }
            indptr.push(indices.len());
        }
        SparseMatrix::new(rows, cols, indptr, indices, Some(vals))
    }

    #[test]
    fn aggregate_and_transpose_match_naive() {
        let pool = pool2();
        let adj = ragged_adj();
        let h = Matrix::xavier(adj.cols(), 9, 8);
        let grad = Matrix::xavier(adj.rows(), 9, 9);
        for (policy, p) in [
            (DispatchPolicy::default(), None),
            (DispatchPolicy::new(1), Some(&pool)),
        ] {
            let agg = policy.aggregate(&adj, &h, p);
            assert_eq!(agg.data(), adj.spmm(&h).data());
            let back = policy.aggregate_transpose(&adj, &grad, p);
            assert_eq!(back.data(), adj.spmm_transpose(&grad).data());
        }
    }

    #[test]
    fn grad_weights_serial_exact_parallel_tolerance() {
        let pool = pool2();
        let x = Matrix::xavier(90, 7, 10);
        let grad = Matrix::xavier(90, 5, 11);
        let naive = x.matmul_transpose_self(&grad);
        let serial = DispatchPolicy::default().grad_weights(&x, &grad, None);
        assert_eq!(naive.data(), serial.data());
        let par = DispatchPolicy::new(1).grad_weights(&x, &grad, Some(&pool));
        for (a, b) in naive.data().iter().zip(par.data()) {
            assert!((a - b).abs() <= 1e-5);
        }
    }

    #[test]
    fn grad_weights_row_offset_writes_stacked_halves() {
        // The fused-SAGE layout: dW is 2f x o; the top half comes from
        // h_dst, the bottom from agg, with no concatenation.
        let f = 4;
        let o = 3;
        let n_dst = 20;
        let policy = DispatchPolicy::default();
        let h = Matrix::xavier(35, f, 12);
        let agg = Matrix::xavier(n_dst, f, 13);
        let grad = Matrix::xavier(n_dst, o, 14);
        let mut dw = Matrix::zeros(2 * f, o);
        policy.grad_weights_into(&h, 0..n_dst, &grad, None, &mut dw, 0);
        policy.grad_weights_into(&agg, 0..n_dst, &grad, None, &mut dw, f);
        let h_dst = h.gather_rows(&(0..n_dst as u32).collect::<Vec<_>>());
        let want = h_dst.concat_cols(&agg).matmul_transpose_self(&grad);
        for (a, b) in dw.data().iter().zip(want.data()) {
            assert!((a - b).abs() <= 1e-5);
        }
    }

    #[test]
    fn grad_input_window_equals_split_reference() {
        let pool = pool2();
        let f = 4;
        let o = 3;
        let grad = Matrix::xavier(80, o, 15);
        let w = Matrix::xavier(2 * f, o, 16);
        let naive_full = grad.matmul_transpose_other(&w);
        for (policy, p) in [
            (DispatchPolicy::default(), None),
            (DispatchPolicy::new(1), Some(&pool)),
        ] {
            let full = policy.grad_input(&grad, &w, 0..2 * f, p);
            assert_eq!(full.data(), naive_full.data());
            // Row windows = columns of the split reference.
            let d_self = policy.grad_input(&grad, &w, 0..f, p);
            let d_neigh = policy.grad_input(&grad, &w, f..2 * f, p);
            let (want_self, want_neigh) = naive_full.split_cols(f);
            assert_eq!(d_self.data(), want_self.data());
            assert_eq!(d_neigh.data(), want_neigh.data());
        }
    }
}
