//! Explicit-SIMD kernel tier: AVX2+FMA f32x8 micro-kernels behind one
//! runtime dispatch point.
//!
//! Everything in this module is reachable only through the free functions
//! at the top, each of which consults [`available`] — a cached runtime
//! check of `avx2` + `fma` CPU features (overridable with `ARGO_SIMD=off`)
//! — and otherwise falls back to the scalar blocked kernels in
//! [`crate::kernels`]. The scalar fallback is compiled unconditionally, so
//! non-x86 hosts and feature-less CPUs keep today's bitwise behavior.
//!
//! Numerical contract per path (pinned by `tests/kernel_properties.rs`):
//!
//! * **GEMM / weight gradient / input gradient** use `vfmadd` — the fused
//!   multiply-add rounds once where the scalar kernels round twice, so
//!   these paths are *tolerance*-equal (≤ 1e-5 scaled) to the scalar
//!   kernels, never bitwise. Each path is still deterministic and
//!   partition-invariant: per output element the `k` contributions are
//!   folded in ascending order regardless of row ranges or pool size.
//! * **SpMM gather ([`axpy`]) and the bias/ReLU epilogue** vectorize the
//!   *feature* dimension with separate `mul` + `add` (never FMA): lanes
//!   are independent and per-element operation order is exactly the
//!   scalar order, so these stay **bitwise** equal to the scalar kernels.
//!
//! The GEMM packs `A` into `MR`-row and `B` into `NR`-column panels (layout
//! below) drawn from the per-thread pack arena in [`crate::workspace`], so
//! steady-state training and serving do not allocate here. Quantized
//! (bf16/int8) weight panels are dequantized during packing — the pack pass
//! already touches every `B` element once, making dequantization nearly
//! free relative to the `MC`-row GEMM that consumes the panel.

use std::ops::Range;
use std::sync::OnceLock;

use crate::dense::Matrix;
use crate::kernels;
use crate::quant::{self, QuantizedMatrix};

/// Whether the SIMD tier is usable on this host: `x86_64` with `avx2` and
/// `fma`, and not disabled via `ARGO_SIMD=off` (or `0`). Cached after the
/// first call, so the environment switch must be set before any kernel
/// runs (as the CI fallback stage does).
pub fn available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        if matches!(
            std::env::var("ARGO_SIMD").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        ) {
            return false;
        }
        detect()
    })
}

#[cfg(target_arch = "x86_64")]
fn detect() -> bool {
    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> bool {
    false
}

/// SIMD [`crate::kernels::gemm_into`]: `dst (+)= A[rows] @ B[b_row_offset..]`.
pub(crate) fn gemm_into(
    a: &Matrix,
    rows: Range<usize>,
    b: &Matrix,
    b_row_offset: usize,
    dst: &mut [f32],
    accumulate: bool,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if available() {
            let src = x86::BSrc::F32 {
                b,
                row0: b_row_offset,
            };
            x86::gemm(a, rows, src, dst, accumulate);
            return;
        }
    }
    kernels::gemm_into(a, rows, b, b_row_offset, dst, accumulate);
}

/// [`gemm_into`] against quantized weights: the `B` panel is dequantized
/// while packing. Falls back to the scalar dequantizing GEMM in
/// [`crate::quant`].
pub(crate) fn gemm_quant_into(
    a: &Matrix,
    rows: Range<usize>,
    qb: &QuantizedMatrix,
    b_row_offset: usize,
    dst: &mut [f32],
    accumulate: bool,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if available() {
            let src = x86::BSrc::Quant {
                b: qb,
                row0: b_row_offset,
            };
            x86::gemm(a, rows, src, dst, accumulate);
            return;
        }
    }
    quant::gemm_scalar(a, rows, qb, b_row_offset, dst, accumulate);
}

/// SIMD [`crate::kernels::transpose_self_into`]: `dst (+)= Aᵀ @ B` over a
/// row window (the weight-gradient reduction).
pub(crate) fn transpose_self_into(
    a: &Matrix,
    b: &Matrix,
    rows: Range<usize>,
    a_row_offset: usize,
    dst: &mut [f32],
    accumulate: bool,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if available() {
            x86::transpose_self(a, b, rows, a_row_offset, dst, accumulate);
            return;
        }
    }
    kernels::transpose_self_into(a, b, rows, a_row_offset, dst, accumulate);
}

/// SIMD [`crate::kernels::transpose_other_into`]: `dst = A[a_rows] @
/// B[b_rows]ᵀ` (the input-gradient dot-product kernel).
pub(crate) fn transpose_other_into(
    a: &Matrix,
    a_rows: Range<usize>,
    b: &Matrix,
    b_rows: Range<usize>,
    dst: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    {
        if available() {
            x86::transpose_other(a, a_rows, b, b_rows, dst);
            return;
        }
    }
    kernels::transpose_other_into(a, a_rows, b, b_rows, dst);
}

/// SIMD [`crate::kernels::epilogue_bias_relu`]; bitwise-equal to the scalar
/// epilogue (per-element `add`/`max`, lane order preserved).
pub(crate) fn epilogue_bias_relu(
    dst: &mut [f32],
    bias: &[f32],
    relu: bool,
    mask: Option<&mut [bool]>,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if available() {
            x86::epilogue(dst, bias, relu, mask);
            return;
        }
    }
    kernels::epilogue_bias_relu(dst, bias, relu, mask);
}

/// Vectorized row gather step `d[c] += w * s[c]` — the inner loop of SpMM
/// and the CSC-gather transposed SpMM. Uses separate `mul` + `add` (no
/// FMA), so it is bitwise-equal to the scalar loop it replaces.
pub(crate) fn axpy(d: &mut [f32], w: f32, s: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        if available() {
            x86::axpy(d, w, s);
            return;
        }
    }
    for (dv, &sv) in d.iter_mut().zip(s) {
        *dv += w * sv;
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The AVX2+FMA implementations. Every function here is only reachable
    //! through the module-level wrappers after [`super::available`] has
    //! confirmed the `avx2` and `fma` CPU features at runtime.

    use std::arch::x86_64::{
        __m256, _mm256_add_ps, _mm256_castps256_ps128, _mm256_cmp_ps, _mm256_extractf128_ps,
        _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_max_ps, _mm256_movemask_ps, _mm256_mul_ps,
        _mm256_set1_ps, _mm256_setzero_ps, _mm256_storeu_ps, _mm_add_ps, _mm_add_ss, _mm_cvtss_f32,
        _mm_movehl_ps, _mm_shuffle_ps, _CMP_GT_OQ,
    };
    use std::ops::Range;

    use crate::dense::Matrix;
    use crate::kernels::{KC, MC, NC};
    use crate::quant::QuantizedMatrix;
    use crate::workspace;

    /// Micro-kernel row tile: `A` values broadcast across the lanes.
    const MR: usize = 4;
    /// Micro-kernel column tile: two f32x8 vectors per output row.
    const NR: usize = 16;

    /// Where a packed `B` panel comes from: plain f32 rows or a quantized
    /// matrix dequantized during packing. `row0` is the `B` row window
    /// offset (the fused-SAGE stacked-weight window).
    pub(super) enum BSrc<'a> {
        F32 { b: &'a Matrix, row0: usize },
        Quant { b: &'a QuantizedMatrix, row0: usize },
    }

    impl BSrc<'_> {
        fn cols(&self) -> usize {
            match self {
                BSrc::F32 { b, .. } => b.cols(),
                BSrc::Quant { b, .. } => b.cols(),
            }
        }

        /// Writes `out.len()` consecutive values of row `k` starting at
        /// column `j0` (dequantizing on the fly for quantized sources).
        fn fill_row_segment(&self, k: usize, j0: usize, out: &mut [f32]) {
            match self {
                BSrc::F32 { b, row0 } => {
                    out.copy_from_slice(&b.row(row0 + k)[j0..j0 + out.len()]);
                }
                BSrc::Quant { b, row0 } => b.dequant_segment_into(row0 + k, j0, out),
            }
        }
    }

    /// Packs an `mc × kc` block of `A` (rows `row0..row0+mc`, reduction
    /// columns `kk..kk+kc`) into `MR`-row tiles, k-major within each tile
    /// (`buf[tile*MR*kc + k*MR + r]`), zero-padding rows past `mc` so the
    /// micro-kernel never branches on the row tail.
    fn pack_a(a: &Matrix, row0: usize, mc: usize, kk: usize, kc: usize, buf: &mut [f32]) {
        for t in 0..mc.div_ceil(MR) {
            let tile = &mut buf[t * MR * kc..(t + 1) * MR * kc];
            for r in 0..MR {
                let gr = t * MR + r;
                if gr < mc {
                    for (k, &v) in a.row(row0 + gr)[kk..kk + kc].iter().enumerate() {
                        tile[k * MR + r] = v;
                    }
                } else {
                    for k in 0..kc {
                        tile[k * MR + r] = 0.0;
                    }
                }
            }
        }
    }

    /// Packs a `kc × nc` block of `B` (rows `kk..`, columns `jj..`) into
    /// `NR`-column tiles, k-major within each tile
    /// (`buf[tile*NR*kc + k*NR + lane]`), zero-padding column tails.
    fn pack_b(src: &BSrc<'_>, kk: usize, kc: usize, jj: usize, nc: usize, buf: &mut [f32]) {
        for t in 0..nc.div_ceil(NR) {
            let j0 = jj + t * NR;
            let w = NR.min(jj + nc - j0);
            let tile = &mut buf[t * NR * kc..(t + 1) * NR * kc];
            for k in 0..kc {
                let lanes = &mut tile[k * NR..(k + 1) * NR];
                src.fill_row_segment(kk + k, j0, &mut lanes[..w]);
                lanes[w..].fill(0.0);
            }
        }
    }

    /// The register-blocked micro-kernel: `dst[at + r*ldd + c] += Σ_k
    /// pa[k*MR+r] * pb[k*NR+c]` for the `mr × nr` valid corner of a 4×16
    /// tile. Full tiles write back straight into `dst`; partial edge tiles
    /// drain through a stack temp so padded lanes never touch `dst` —
    /// valid lanes see an identical FMA sequence either way.
    #[allow(clippy::too_many_arguments)] // internal micro-kernel: all args are tile indices
    #[target_feature(enable = "avx2,fma")]
    fn micro_4x16(
        pa: &[f32],
        pb: &[f32],
        kc: usize,
        dst: &mut [f32],
        at: usize,
        ldd: usize,
        mr: usize,
        nr: usize,
    ) {
        debug_assert!(pa.len() >= kc * MR && pb.len() >= kc * NR, "packed panels");
        let mut c00 = _mm256_setzero_ps();
        let mut c01 = _mm256_setzero_ps();
        let mut c10 = _mm256_setzero_ps();
        let mut c11 = _mm256_setzero_ps();
        let mut c20 = _mm256_setzero_ps();
        let mut c21 = _mm256_setzero_ps();
        let mut c30 = _mm256_setzero_ps();
        let mut c31 = _mm256_setzero_ps();
        let pap = pa.as_ptr();
        let pbp = pb.as_ptr();
        for k in 0..kc {
            // SAFETY: avx2+fma were confirmed by `available()` before any
            // call into this module; `pa`/`pb` hold `kc` packed groups of
            // MR / NR lanes (asserted above), so every load is in bounds.
            unsafe {
                let b0 = _mm256_loadu_ps(pbp.add(k * NR));
                let b1 = _mm256_loadu_ps(pbp.add(k * NR + 8));
                let a0 = _mm256_set1_ps(*pap.add(k * MR));
                let a1 = _mm256_set1_ps(*pap.add(k * MR + 1));
                let a2 = _mm256_set1_ps(*pap.add(k * MR + 2));
                let a3 = _mm256_set1_ps(*pap.add(k * MR + 3));
                c00 = _mm256_fmadd_ps(a0, b0, c00);
                c01 = _mm256_fmadd_ps(a0, b1, c01);
                c10 = _mm256_fmadd_ps(a1, b0, c10);
                c11 = _mm256_fmadd_ps(a1, b1, c11);
                c20 = _mm256_fmadd_ps(a2, b0, c20);
                c21 = _mm256_fmadd_ps(a2, b1, c21);
                c30 = _mm256_fmadd_ps(a3, b0, c30);
                c31 = _mm256_fmadd_ps(a3, b1, c31);
            }
        }
        let acc = [[c00, c01], [c10, c11], [c20, c21], [c30, c31]];
        if mr == MR && nr == NR {
            debug_assert!(at + (MR - 1) * ldd + NR <= dst.len(), "full tile bounds");
            for (r, [v0, v1]) in acc.into_iter().enumerate() {
                // SAFETY: avx2 confirmed by `available()`; the full-tile
                // bounds assertion above keeps each 8-lane load/store of
                // this output row inside `dst`.
                unsafe {
                    let p = dst.as_mut_ptr().add(at + r * ldd);
                    _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), v0));
                    _mm256_storeu_ps(p.add(8), _mm256_add_ps(_mm256_loadu_ps(p.add(8)), v1));
                }
            }
        } else {
            let mut tmp = [0.0f32; MR * NR];
            for (r, [v0, v1]) in acc.into_iter().enumerate() {
                // SAFETY: avx2 confirmed by `available()`; `tmp` holds
                // exactly MR*NR floats, so both 8-lane stores fit.
                unsafe {
                    _mm256_storeu_ps(tmp.as_mut_ptr().add(r * NR), v0);
                    _mm256_storeu_ps(tmp.as_mut_ptr().add(r * NR + 8), v1);
                }
            }
            for r in 0..mr {
                let drow = &mut dst[at + r * ldd..at + r * ldd + nr];
                for (d, &t) in drow.iter_mut().zip(&tmp[r * NR..r * NR + nr]) {
                    *d += t;
                }
            }
        }
    }

    /// Packed-panel GEMM driver: the same `k`-outermost MC/KC/NC blocking
    /// as [`crate::kernels::gemm_into`], with panels packed into the
    /// per-thread arena and the 4×16 FMA micro-kernel in the middle. `A`
    /// is repacked per `jj` panel — irrelevant at the model-side widths
    /// (`n ≤ NC` means the `jj` loop runs once).
    pub(super) fn gemm(
        a: &Matrix,
        rows: Range<usize>,
        bsrc: BSrc<'_>,
        dst: &mut [f32],
        accumulate: bool,
    ) {
        let k_dim = a.cols();
        let n = bsrc.cols();
        let m = rows.len();
        debug_assert_eq!(dst.len(), m * n, "dst shape");
        if !accumulate {
            dst.fill(0.0);
        }
        if m == 0 || n == 0 || k_dim == 0 {
            return;
        }
        workspace::with_pack_buffers(MC * KC, KC * NC, |pa, pb| {
            for kk in (0..k_dim).step_by(KC) {
                let kc = KC.min(k_dim - kk);
                for jj in (0..n).step_by(NC) {
                    let nc = NC.min(n - jj);
                    pack_b(&bsrc, kk, kc, jj, nc, pb);
                    for ii in (0..m).step_by(MC) {
                        let mc = MC.min(m - ii);
                        pack_a(a, rows.start + ii, mc, kk, kc, pa);
                        let mut it = 0;
                        while it < mc {
                            let mr = MR.min(mc - it);
                            let pa_tile = &pa[(it / MR) * MR * kc..][..MR * kc];
                            let mut jt = 0;
                            while jt < nc {
                                let nr = NR.min(nc - jt);
                                let pb_tile = &pb[(jt / NR) * NR * kc..][..NR * kc];
                                let at = (ii + it) * n + jj + jt;
                                // SAFETY: avx2+fma were confirmed by
                                // `available()` before dispatch routed here.
                                unsafe {
                                    micro_4x16(pa_tile, pb_tile, kc, dst, at, n, mr, nr);
                                }
                                jt += NR;
                            }
                            it += MR;
                        }
                    }
                }
            }
        });
    }

    /// FMA weight-gradient reduction, same blocking/unroll structure as
    /// [`crate::kernels::transpose_self_into`] with the `n` loop in 8-wide
    /// FMA lanes (scalar mul+add tail; tolerance contract).
    pub(super) fn transpose_self(
        a: &Matrix,
        b: &Matrix,
        rows: Range<usize>,
        a_row_offset: usize,
        dst: &mut [f32],
        accumulate: bool,
    ) {
        if !accumulate {
            dst.fill(0.0);
        }
        // SAFETY: avx2+fma were confirmed by `available()` before dispatch
        // routed into this module.
        unsafe { transpose_self_avx(a, b, rows, a_row_offset, dst) }
    }

    #[target_feature(enable = "avx2,fma")]
    fn transpose_self_avx(
        a: &Matrix,
        b: &Matrix,
        rows: Range<usize>,
        a_row_offset: usize,
        dst: &mut [f32],
    ) {
        let k_a = a.cols();
        let n = b.cols();
        debug_assert_eq!(dst.len(), k_a * n, "dst shape");
        let lo = rows.start;
        let m = rows.len();
        for rr in (0..m).step_by(KC) {
            let r_hi = (rr + KC).min(m);
            for ii in (0..k_a).step_by(MC) {
                let i_hi = (ii + MC).min(k_a);
                let mut r = rr;
                while r + MR <= r_hi {
                    let (ar0, ar1, ar2, ar3) = (
                        a.row(a_row_offset + lo + r),
                        a.row(a_row_offset + lo + r + 1),
                        a.row(a_row_offset + lo + r + 2),
                        a.row(a_row_offset + lo + r + 3),
                    );
                    let (br0, br1, br2, br3) = (
                        b.row(lo + r),
                        b.row(lo + r + 1),
                        b.row(lo + r + 2),
                        b.row(lo + r + 3),
                    );
                    for i in ii..i_hi {
                        let (x0, x1, x2, x3) = (ar0[i], ar1[i], ar2[i], ar3[i]);
                        let xv0 = _mm256_set1_ps(x0);
                        let xv1 = _mm256_set1_ps(x1);
                        let xv2 = _mm256_set1_ps(x2);
                        let xv3 = _mm256_set1_ps(x3);
                        let drow = &mut dst[i * n..(i + 1) * n];
                        let mut j = 0;
                        while j + 8 <= n {
                            // SAFETY: avx2+fma confirmed by `available()`;
                            // `j + 8 <= n` bounds every 8-lane load/store
                            // of the four b rows and the dst row.
                            unsafe {
                                let dp = drow.as_mut_ptr().add(j);
                                let mut d = _mm256_loadu_ps(dp);
                                d = _mm256_fmadd_ps(xv0, _mm256_loadu_ps(br0.as_ptr().add(j)), d);
                                d = _mm256_fmadd_ps(xv1, _mm256_loadu_ps(br1.as_ptr().add(j)), d);
                                d = _mm256_fmadd_ps(xv2, _mm256_loadu_ps(br2.as_ptr().add(j)), d);
                                d = _mm256_fmadd_ps(xv3, _mm256_loadu_ps(br3.as_ptr().add(j)), d);
                                _mm256_storeu_ps(dp, d);
                            }
                            j += 8;
                        }
                        for c in j..n {
                            let mut v = drow[c];
                            v += x0 * br0[c];
                            v += x1 * br1[c];
                            v += x2 * br2[c];
                            v += x3 * br3[c];
                            drow[c] = v;
                        }
                    }
                    r += MR;
                }
                for rem in r..r_hi {
                    let ar = a.row(a_row_offset + lo + rem);
                    let br = b.row(lo + rem);
                    for i in ii..i_hi {
                        let x = ar[i];
                        let xv = _mm256_set1_ps(x);
                        let drow = &mut dst[i * n..(i + 1) * n];
                        let mut j = 0;
                        while j + 8 <= n {
                            // SAFETY: avx2+fma confirmed by `available()`;
                            // `j + 8 <= n` bounds the 8-lane load/store.
                            unsafe {
                                let dp = drow.as_mut_ptr().add(j);
                                let d = _mm256_fmadd_ps(
                                    xv,
                                    _mm256_loadu_ps(br.as_ptr().add(j)),
                                    _mm256_loadu_ps(dp),
                                );
                                _mm256_storeu_ps(dp, d);
                            }
                            j += 8;
                        }
                        for c in j..n {
                            drow[c] += x * br[c];
                        }
                    }
                }
            }
        }
    }

    /// FMA dot-product kernel for `dst = A[a_rows] @ B[b_rows]ᵀ`: the `k`
    /// reduction runs in 8 independent lanes folded by a horizontal sum,
    /// which reassociates the reduction — tolerance contract.
    pub(super) fn transpose_other(
        a: &Matrix,
        a_rows: Range<usize>,
        b: &Matrix,
        b_rows: Range<usize>,
        dst: &mut [f32],
    ) {
        // SAFETY: avx2+fma were confirmed by `available()` before dispatch
        // routed into this module.
        unsafe { transpose_other_avx(a, a_rows, b, b_rows, dst) }
    }

    #[target_feature(enable = "avx2,fma")]
    fn transpose_other_avx(
        a: &Matrix,
        a_rows: Range<usize>,
        b: &Matrix,
        b_rows: Range<usize>,
        dst: &mut [f32],
    ) {
        debug_assert_eq!(a.cols(), b.cols(), "inner dim");
        let k_dim = a.cols();
        let n = b_rows.len();
        debug_assert_eq!(dst.len(), a_rows.len() * n, "dst shape");
        const TJ: usize = 4;
        for (ir, i) in a_rows.enumerate() {
            let ar = a.row(i);
            let out_row = &mut dst[ir * n..(ir + 1) * n];
            let mut j = 0;
            while j + TJ <= n {
                let (br0, br1, br2, br3) = (
                    b.row(b_rows.start + j),
                    b.row(b_rows.start + j + 1),
                    b.row(b_rows.start + j + 2),
                    b.row(b_rows.start + j + 3),
                );
                let mut v0 = _mm256_setzero_ps();
                let mut v1 = _mm256_setzero_ps();
                let mut v2 = _mm256_setzero_ps();
                let mut v3 = _mm256_setzero_ps();
                let mut k = 0;
                while k + 8 <= k_dim {
                    // SAFETY: avx2+fma confirmed by `available()`;
                    // `k + 8 <= k_dim` bounds every 8-lane load.
                    unsafe {
                        let av = _mm256_loadu_ps(ar.as_ptr().add(k));
                        v0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(br0.as_ptr().add(k)), v0);
                        v1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(br1.as_ptr().add(k)), v1);
                        v2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(br2.as_ptr().add(k)), v2);
                        v3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(br3.as_ptr().add(k)), v3);
                    }
                    k += 8;
                }
                let (mut t0, mut t1, mut t2, mut t3) = (0.0f32, 0.0, 0.0, 0.0);
                for c in k..k_dim {
                    let x = ar[c];
                    t0 += x * br0[c];
                    t1 += x * br1[c];
                    t2 += x * br2[c];
                    t3 += x * br3[c];
                }
                out_row[j] = hsum(v0) + t0;
                out_row[j + 1] = hsum(v1) + t1;
                out_row[j + 2] = hsum(v2) + t2;
                out_row[j + 3] = hsum(v3) + t3;
                j += TJ;
            }
            for (jr, out) in out_row.iter_mut().enumerate().take(n).skip(j) {
                let br = b.row(b_rows.start + jr);
                let mut v = _mm256_setzero_ps();
                let mut k = 0;
                while k + 8 <= k_dim {
                    // SAFETY: avx2+fma confirmed by `available()`;
                    // `k + 8 <= k_dim` bounds both 8-lane loads.
                    unsafe {
                        v = _mm256_fmadd_ps(
                            _mm256_loadu_ps(ar.as_ptr().add(k)),
                            _mm256_loadu_ps(br.as_ptr().add(k)),
                            v,
                        );
                    }
                    k += 8;
                }
                let mut t = 0.0f32;
                for c in k..k_dim {
                    t += ar[c] * br[c];
                }
                *out = hsum(v) + t;
            }
        }
    }

    /// Horizontal sum of the 8 lanes.
    #[target_feature(enable = "avx2")]
    fn hsum(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps::<1>(v);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps::<1>(s, s));
        _mm_cvtss_f32(s)
    }

    /// Vectorized bias/ReLU epilogue; bitwise-equal to the scalar one
    /// (per-element `add`, `max`, `>` — lane order preserved).
    pub(super) fn epilogue(dst: &mut [f32], bias: &[f32], relu: bool, mask: Option<&mut [bool]>) {
        // SAFETY: avx2 was confirmed by `available()` before dispatch
        // routed into this module.
        unsafe { epilogue_avx(dst, bias, relu, mask) }
    }

    #[target_feature(enable = "avx2")]
    fn epilogue_avx(dst: &mut [f32], bias: &[f32], relu: bool, mask: Option<&mut [bool]>) {
        let n = bias.len();
        if n == 0 {
            return;
        }
        debug_assert!(dst.len().is_multiple_of(n), "dst rows × bias len");
        let zero = _mm256_setzero_ps();
        match (relu, mask) {
            (true, Some(mask)) => {
                debug_assert_eq!(mask.len(), dst.len(), "mask shape");
                for (drow, mrow) in dst.chunks_exact_mut(n).zip(mask.chunks_exact_mut(n)) {
                    let mut j = 0;
                    while j + 8 <= n {
                        // SAFETY: avx2 confirmed by `available()`;
                        // `j + 8 <= n` bounds the row/bias loads, the store
                        // and the 8 mask lanes.
                        unsafe {
                            let dp = drow.as_mut_ptr().add(j);
                            let z = _mm256_add_ps(
                                _mm256_loadu_ps(dp),
                                _mm256_loadu_ps(bias.as_ptr().add(j)),
                            );
                            let bits =
                                _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_GT_OQ>(z, zero)) as u32;
                            _mm256_storeu_ps(dp, _mm256_max_ps(z, zero));
                            for (l, m) in mrow[j..j + 8].iter_mut().enumerate() {
                                *m = bits & (1 << l) != 0;
                            }
                        }
                        j += 8;
                    }
                    for c in j..n {
                        let z = drow[c] + bias[c];
                        let active = z > 0.0;
                        mrow[c] = active;
                        drow[c] = if active { z } else { 0.0 };
                    }
                }
            }
            (true, None) => {
                for drow in dst.chunks_exact_mut(n) {
                    let mut j = 0;
                    while j + 8 <= n {
                        // SAFETY: avx2 confirmed by `available()`;
                        // `j + 8 <= n` bounds the loads and the store.
                        unsafe {
                            let dp = drow.as_mut_ptr().add(j);
                            let z = _mm256_add_ps(
                                _mm256_loadu_ps(dp),
                                _mm256_loadu_ps(bias.as_ptr().add(j)),
                            );
                            _mm256_storeu_ps(dp, _mm256_max_ps(z, zero));
                        }
                        j += 8;
                    }
                    for c in j..n {
                        let z = drow[c] + bias[c];
                        drow[c] = if z > 0.0 { z } else { 0.0 };
                    }
                }
            }
            (false, _) => {
                for drow in dst.chunks_exact_mut(n) {
                    let mut j = 0;
                    while j + 8 <= n {
                        // SAFETY: avx2 confirmed by `available()`;
                        // `j + 8 <= n` bounds the loads and the store.
                        unsafe {
                            let dp = drow.as_mut_ptr().add(j);
                            _mm256_storeu_ps(
                                dp,
                                _mm256_add_ps(
                                    _mm256_loadu_ps(dp),
                                    _mm256_loadu_ps(bias.as_ptr().add(j)),
                                ),
                            );
                        }
                        j += 8;
                    }
                    for c in j..n {
                        drow[c] += bias[c];
                    }
                }
            }
        }
    }

    /// `d[c] += w * s[c]` with separate `mul` + `add` — deliberately no
    /// FMA, to stay bitwise-equal to the scalar gather loop.
    pub(super) fn axpy(d: &mut [f32], w: f32, s: &[f32]) {
        // SAFETY: avx2 was confirmed by `available()` before dispatch
        // routed into this module.
        unsafe { axpy_avx(d, w, s) }
    }

    #[target_feature(enable = "avx2")]
    fn axpy_avx(d: &mut [f32], w: f32, s: &[f32]) {
        let n = d.len().min(s.len());
        let wv = _mm256_set1_ps(w);
        let mut j = 0;
        while j + 8 <= n {
            // SAFETY: avx2 confirmed by `available()`; `j + 8 <= n` bounds
            // both 8-lane loads and the store.
            unsafe {
                let dp = d.as_mut_ptr().add(j);
                let prod = _mm256_mul_ps(wv, _mm256_loadu_ps(s.as_ptr().add(j)));
                _mm256_storeu_ps(dp, _mm256_add_ps(_mm256_loadu_ps(dp), prod));
            }
            j += 8;
        }
        for c in j..n {
            d[c] += w * s[c];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::{QuantKind, QuantizedMatrix};
    use crate::workspace;

    /// Scaled tolerance of the FMA contract: one fused rounding per `k`
    /// step against two scalar roundings.
    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() <= 1e-5 * 1.0f32.max(b.abs())
    }

    #[test]
    fn simd_gemm_matches_scalar_within_contract() {
        if !available() {
            return;
        }
        for (m, k, n) in [
            (1, 1, 1),
            (4, 16, 16),
            (7, 13, 5),
            (65, 300, 9),
            (130, 64, 520),
        ] {
            let a = Matrix::xavier(m, k, 1);
            let b = Matrix::xavier(k, n, 2);
            let mut got = vec![0.0f32; m * n];
            gemm_into(&a, 0..m, &b, 0, &mut got, false);
            let want = a.matmul(&b);
            for (g, w) in got.iter().zip(want.data()) {
                assert!(close(*g, *w), "{m}x{k}x{n}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn simd_gemm_accumulate_and_row_window() {
        if !available() {
            return;
        }
        // The fused-SAGE invariant: row windows of a stacked B, accumulated.
        let a = Matrix::xavier(10, 6, 7);
        let w = Matrix::xavier(12, 8, 8);
        let mut fused = vec![0.0f32; 10 * 8];
        gemm_into(&a, 0..10, &w, 0, &mut fused, false);
        gemm_into(&a, 0..10, &w, 6, &mut fused, true);
        let w_top = Matrix::from_vec(6, 8, w.data()[..48].to_vec());
        let w_bot = Matrix::from_vec(6, 8, w.data()[48..].to_vec());
        let want_top = a.matmul(&w_top);
        let want_bot = a.matmul(&w_bot);
        for (f, (t, b)) in fused
            .iter()
            .zip(want_top.data().iter().zip(want_bot.data()))
        {
            assert!(close(*f, t + b), "{f} vs {}", t + b);
        }
    }

    #[test]
    fn simd_gemm_partition_invariant_bitwise() {
        if !available() {
            return;
        }
        // Per-element FMA order is independent of the row range split, so
        // pool-style partitioning is bitwise-reproducible.
        let a = Matrix::xavier(71, 33, 3);
        let b = Matrix::xavier(33, 19, 4);
        let mut whole = vec![0.0f32; 71 * 19];
        gemm_into(&a, 0..71, &b, 0, &mut whole, false);
        let mut split = vec![0.0f32; 71 * 19];
        let (top, bot) = split.split_at_mut(40 * 19);
        gemm_into(&a, 0..40, &b, 0, top, false);
        gemm_into(&a, 40..71, &b, 0, bot, false);
        assert_eq!(whole, split);
    }

    #[test]
    fn simd_transposes_match_scalar_within_contract() {
        if !available() {
            return;
        }
        for (m, k, n) in [(1, 1, 1), (9, 70, 5), (67, 13, 30), (300, 65, 4)] {
            let a = Matrix::xavier(m, k, 5);
            let b = Matrix::xavier(m, n, 6);
            let mut got = vec![0.0f32; k * n];
            transpose_self_into(&a, &b, 0..m, 0, &mut got, false);
            let want = a.matmul_transpose_self(&b);
            for (g, w) in got.iter().zip(want.data()) {
                assert!(close(*g, *w), "AtB {m}x{k}x{n}: {g} vs {w}");
            }
            let bt = Matrix::xavier(n, k, 7);
            let mut got = vec![0.0f32; m * n];
            transpose_other_into(&a, 0..m, &bt, 0..n, &mut got);
            let want = a.matmul_transpose_other(&bt);
            for (g, w) in got.iter().zip(want.data()) {
                assert!(close(*g, *w), "ABt {m}x{k}x{n}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn simd_axpy_and_epilogue_bitwise_equal_scalar() {
        for n in [1usize, 7, 8, 9, 16, 31, 64, 130] {
            let src: Vec<f32> = (0..n).map(|i| (i as f32) * 0.37 - 3.0).collect();
            let mut a: Vec<f32> = (0..n).map(|i| (i as f32) * -0.11 + 1.0).collect();
            let mut b = a.clone();
            axpy(&mut a, 0.73, &src);
            for (d, &s) in b.iter_mut().zip(&src) {
                *d += 0.73 * s;
            }
            assert_eq!(a, b, "axpy n={n}");

            let bias: Vec<f32> = (0..n).map(|i| (i as f32) * 0.21 - 1.3).collect();
            let mut d1: Vec<f32> = (0..2 * n).map(|i| (i as f32) * 0.17 - 2.0).collect();
            let mut d2 = d1.clone();
            let mut m1 = vec![false; 2 * n];
            let mut m2 = vec![false; 2 * n];
            epilogue_bias_relu(&mut d1, &bias, true, Some(&mut m1));
            kernels::epilogue_bias_relu(&mut d2, &bias, true, Some(&mut m2));
            assert_eq!(d1, d2, "epilogue n={n}");
            assert_eq!(m1, m2, "mask n={n}");
        }
    }

    #[test]
    fn quant_gemm_tracks_f32_gemm() {
        let a = Matrix::xavier(33, 24, 9);
        let b = Matrix::xavier(24, 17, 10);
        let want = a.matmul(&b);
        for (kind, tol) in [(QuantKind::Bf16, 0.02f32), (QuantKind::Int8, 0.08)] {
            let qb = QuantizedMatrix::quantize(&b, kind);
            let mut got = vec![0.0f32; 33 * 17];
            gemm_quant_into(&a, 0..33, &qb, 0, &mut got, false);
            let norm: f32 = want.data().iter().map(|x| x * x).sum::<f32>().sqrt();
            let err: f32 = got
                .iter()
                .zip(want.data())
                .map(|(g, w)| (g - w) * (g - w))
                .sum::<f32>()
                .sqrt();
            assert!(
                err <= tol * norm,
                "{kind:?}: relative error {} > {tol}",
                err / norm
            );
        }
    }

    #[test]
    fn pack_arena_reaches_steady_state() {
        if !available() {
            return;
        }
        let a = Matrix::xavier(100, 300, 11);
        let b = Matrix::xavier(300, 40, 12);
        let mut out = vec![0.0f32; 100 * 40];
        gemm_into(&a, 0..100, &b, 0, &mut out, false);
        let warm = workspace::pack_buffer_grows();
        for _ in 0..3 {
            gemm_into(&a, 0..100, &b, 0, &mut out, false);
        }
        assert_eq!(
            workspace::pack_buffer_grows(),
            warm,
            "steady-state GEMM must not grow the pack arena"
        );
    }
}
