//! # argo-tensor — minimal dense/sparse tensor kernels for GNN training
//!
//! This crate is the Rust stand-in for the numerical backend the paper's GNN
//! libraries get from PyTorch: a dense row-major [`Matrix`] with the GEMM,
//! bias/activation and loss kernels a 3-layer GNN needs, plus the two
//! "fundamental GNN kernels" DGL builds message passing on (paper
//! Section II-C):
//!
//! * **SpMM** — sparse × dense, used for feature aggregation (Eq. 1–2);
//! * **SDDMM** — sampled dense-dense, used for edge-wise scores.
//!
//! Every kernel has a serial form and (where it matters) a pool-parallel
//! form that runs on an [`argo_rt::ThreadPool`], so the engine can bind the
//! compute to the *training cores* chosen by the auto-tuner.

pub mod dense;
pub mod dispatch;
mod kernels;
pub mod ops;
pub mod quant;
mod simd;
pub mod sparse;
pub mod workspace;

pub use dense::Matrix;
pub use dispatch::{DispatchPolicy, Epilogue};
pub use quant::{QuantKind, QuantizedMatrix};
pub use simd::available as simd_available;
pub use sparse::{CscMirror, SparseMatrix, SparseView};
pub use workspace::Workspace;
