//! Element-wise and loss kernels with their backward passes.

use crate::dense::Matrix;

/// In-place ReLU; returns the activation mask needed by the backward pass.
pub fn relu_inplace(x: &mut Matrix) -> Vec<bool> {
    let mut mask = Vec::with_capacity(x.data().len());
    for v in x.data_mut().iter_mut() {
        let active = *v > 0.0;
        mask.push(active);
        if !active {
            *v = 0.0;
        }
    }
    mask
}

/// Backward of ReLU: zeroes gradient where the activation was clipped.
pub fn relu_backward(grad: &mut Matrix, mask: &[bool]) {
    assert_eq!(grad.data().len(), mask.len(), "relu mask mismatch");
    for (g, &m) in grad.data_mut().iter_mut().zip(mask) {
        if !m {
            *g = 0.0;
        }
    }
}

/// LeakyReLU over a value slice: `x if x > 0 else slope·x`. Returns the
/// per-element derivative (1 or `slope`) for the backward pass.
pub fn leaky_relu_inplace(x: &mut [f32], slope: f32) -> Vec<f32> {
    let mut deriv = Vec::with_capacity(x.len());
    for v in x.iter_mut() {
        if *v > 0.0 {
            deriv.push(1.0);
        } else {
            *v *= slope;
            deriv.push(slope);
        }
    }
    deriv
}

/// Inverted dropout: zeroes each element with probability `p` and scales
/// survivors by `1/(1-p)` so the expectation is unchanged. Returns the kept
/// mask (with the scale folded in) for the backward pass. Deterministic in
/// the supplied RNG — required so DDP replicas can reproduce each other.
pub fn dropout_inplace(x: &mut Matrix, p: f32, rng: &mut impl rand::Rng) -> Vec<f32> {
    assert!((0.0..1.0).contains(&p), "dropout prob must be in [0,1)");
    if p == 0.0 {
        return vec![1.0; x.data().len()];
    }
    let keep = 1.0 - p;
    let scale = 1.0 / keep;
    let mut mask = Vec::with_capacity(x.data().len());
    for v in x.data_mut().iter_mut() {
        if rng.gen::<f32>() < keep {
            *v *= scale;
            mask.push(scale);
        } else {
            *v = 0.0;
            mask.push(0.0);
        }
    }
    mask
}

/// Backward of dropout: multiply by the stored mask.
pub fn dropout_backward(grad: &mut Matrix, mask: &[f32]) {
    assert_eq!(grad.data().len(), mask.len(), "dropout mask mismatch");
    for (g, &m) in grad.data_mut().iter_mut().zip(mask) {
        *g *= m;
    }
}

/// Adds the bias row vector to every row of `x`.
pub fn add_bias(x: &mut Matrix, bias: &[f32]) {
    assert_eq!(x.cols(), bias.len(), "bias length mismatch");
    for r in 0..x.rows() {
        for (v, b) in x.row_mut(r).iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Bias gradient: column-wise sum of the output gradient.
pub fn bias_grad(dy: &Matrix) -> Vec<f32> {
    let mut g = vec![0.0f32; dy.cols()];
    bias_grad_into(dy, &mut g);
    g
}

/// [`bias_grad`] into a caller-provided (model-owned) buffer, so the
/// per-layer `db` allocation is reused across training steps.
pub fn bias_grad_into(dy: &Matrix, out: &mut [f32]) {
    assert_eq!(out.len(), dy.cols(), "bias grad length mismatch");
    out.fill(0.0);
    for r in 0..dy.rows() {
        for (acc, v) in out.iter_mut().zip(dy.row(r)) {
            *acc += v;
        }
    }
}

/// Softmax cross-entropy over rows of `logits` against integer `labels`.
///
/// Returns `(mean_loss, dlogits)` where `dlogits` is the gradient of the
/// *mean* loss (already divided by the batch size) — matching what a DDP
/// process computes on its local mini-batch before gradient averaging.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[u32]) -> (f32, Matrix) {
    assert_eq!(logits.rows(), labels.len(), "labels length mismatch");
    assert!(logits.rows() > 0, "empty batch");
    let n = logits.rows();
    let c = logits.cols();
    let mut grad = Matrix::zeros(n, c);
    let mut loss = 0.0f64;
    let inv_n = 1.0 / n as f32;
    for (i, &lab) in labels.iter().enumerate() {
        let row = logits.row(i);
        let label = lab as usize;
        assert!(label < c, "label {label} out of range {c}");
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for &v in row {
            denom += (v - max).exp();
        }
        let log_denom = denom.ln();
        loss += f64::from(log_denom - (row[label] - max));
        let grow = grad.row_mut(i);
        for (j, &v) in row.iter().enumerate() {
            let p = (v - max).exp() / denom;
            grow[j] = (p - if j == label { 1.0 } else { 0.0 }) * inv_n;
        }
    }
    ((loss / n as f64) as f32, grad)
}

/// Fraction of rows whose argmax equals the label.
pub fn accuracy(logits: &Matrix, labels: &[u32]) -> f64 {
    assert_eq!(logits.rows(), labels.len());
    if labels.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (i, &lab) in labels.iter().enumerate() {
        let row = logits.row(i);
        let mut best = 0usize;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        if best == lab as usize {
            correct += 1;
        }
    }
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clips_and_masks() {
        let mut x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        let mask = relu_inplace(&mut x);
        assert_eq!(x.data(), &[0.0, 0.0, 2.0, 0.0]);
        assert_eq!(mask, vec![false, false, true, false]);
    }

    #[test]
    fn relu_backward_masks_grad() {
        let mut g = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        relu_backward(&mut g, &[true, false, true]);
        assert_eq!(g.data(), &[1.0, 0.0, 3.0]);
    }

    #[test]
    fn dropout_preserves_expectation_and_masks() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let n = 20_000;
        let mut x = Matrix::from_vec(1, n, vec![1.0; n]);
        let mask = dropout_inplace(&mut x, 0.3, &mut rng);
        let mean: f32 = x.data().iter().sum::<f32>() / n as f32;
        assert!((mean - 1.0).abs() < 0.05, "expectation drifted: {mean}");
        let dropped = x.data().iter().filter(|v| **v == 0.0).count() as f32 / n as f32;
        assert!((dropped - 0.3).abs() < 0.03, "drop rate {dropped}");
        // Backward applies the same mask.
        let mut g = Matrix::from_vec(1, n, vec![1.0; n]);
        dropout_backward(&mut g, &mask);
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn dropout_zero_prob_is_identity() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let mut x = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let mask = dropout_inplace(&mut x, 0.0, &mut rng);
        assert_eq!(x.data(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(mask.iter().all(|&m| m == 1.0));
    }

    #[test]
    fn dropout_deterministic_in_rng() {
        use rand::SeedableRng;
        let run = || {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
            let mut x = Matrix::from_vec(2, 8, (0..16).map(|i| i as f32).collect());
            dropout_inplace(&mut x, 0.5, &mut rng);
            x
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let mut x = vec![-2.0f32, 0.0, 3.0];
        let d = leaky_relu_inplace(&mut x, 0.2);
        assert_eq!(x, vec![-0.4, 0.0, 3.0]);
        assert_eq!(d, vec![0.2, 0.2, 1.0]);
    }

    #[test]
    fn bias_roundtrip() {
        let mut x = Matrix::zeros(2, 3);
        add_bias(&mut x, &[1.0, 2.0, 3.0]);
        assert_eq!(x.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(x.row(1), &[1.0, 2.0, 3.0]);
        let g = bias_grad(&x);
        assert_eq!(g, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn xent_uniform_logits() {
        // Uniform logits over c classes: loss = ln(c).
        let logits = Matrix::zeros(2, 4);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // Gradient rows sum to zero.
        for i in 0..2 {
            let s: f32 = grad.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
        // True-class entry negative, others positive.
        assert!(grad.get(0, 0) < 0.0 && grad.get(0, 1) > 0.0);
    }

    #[test]
    fn xent_confident_correct_is_low_loss() {
        let logits = Matrix::from_vec(1, 3, vec![10.0, -10.0, -10.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3, "loss {loss}");
    }

    #[test]
    fn xent_gradient_matches_finite_difference() {
        let logits = Matrix::from_vec(2, 3, vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]);
        let labels = [2u32, 0u32];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut plus = logits.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let mut minus = logits.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                let (lp, _) = softmax_cross_entropy(&plus, &labels);
                let (lm, _) = softmax_cross_entropy(&minus, &labels);
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - grad.get(r, c)).abs() < 1e-3,
                    "fd {fd} vs analytic {} at ({r},{c})",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn xent_is_stable_for_large_logits() {
        let logits = Matrix::from_vec(1, 2, vec![1000.0, -1000.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn accuracy_counts() {
        let logits = Matrix::from_vec(3, 2, vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&Matrix::zeros(0, 2), &[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn label_out_of_range_panics() {
        softmax_cross_entropy(&Matrix::zeros(1, 2), &[5]);
    }
}
