//! CSR sparse matrix with the two fundamental GNN kernels: SpMM and SDDMM
//! (paper Section II-C).

use std::sync::{Arc, OnceLock};

use argo_rt::{racecheck, ThreadPool};

use crate::dense::Matrix;
use crate::simd;

/// A `rows x cols` sparse matrix in CSR form with optional explicit values
/// (implicit value 1.0 when `values` is `None`) — exactly the shape of a
/// sampled message-passing block: rows are destination nodes, columns are
/// source nodes, values are normalization coefficients.
///
/// A [`CscMirror`] (column-major view of the same entries) is built lazily
/// on first transposed SpMM and cached; clones share an already-built
/// mirror via `Arc`, so every layer and the backward pass of a training
/// step reuse one mirror per adjacency.
#[derive(Debug)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Option<Vec<f32>>,
    csc: OnceLock<Arc<CscMirror>>,
}

impl Clone for SparseMatrix {
    fn clone(&self) -> Self {
        let csc = OnceLock::new();
        // Share an already-built mirror; an unbuilt one stays lazy.
        if let Some(m) = self.csc.get() {
            let _ = csc.set(Arc::clone(m));
        }
        Self {
            rows: self.rows,
            cols: self.cols,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            values: self.values.clone(),
            csc,
        }
    }
}

impl PartialEq for SparseMatrix {
    fn eq(&self, other: &Self) -> bool {
        // The CSC mirror is derived state: equality is structural.
        self.rows == other.rows
            && self.cols == other.cols
            && self.indptr == other.indptr
            && self.indices == other.indices
            && self.values == other.values
    }
}

/// Column-major mirror of a [`SparseMatrix`]: the same entries grouped by
/// CSR *column*, with the originating row of each entry in `rowidx`.
///
/// Built by a counting sort over the CSR entries in row-major order, so
/// within every column the rows appear in **ascending** order — a CSC
/// gather therefore accumulates each output element in exactly the order
/// the naive CSR scatter ([`SparseMatrix::spmm_transpose`]) does, and the
/// two kernels agree bitwise.
#[derive(Debug)]
pub struct CscMirror {
    colptr: Vec<usize>,
    rowidx: Vec<u32>,
    values: Option<Vec<f32>>,
}

impl CscMirror {
    /// Column pointer array (`cols + 1` entries).
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// CSR row index of each entry, ascending within each column.
    pub fn rowidx(&self) -> &[u32] {
        &self.rowidx
    }
}

impl SparseMatrix {
    /// Builds a CSR matrix; validates the structure.
    pub fn new(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Option<Vec<f32>>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length");
        assert_eq!(indptr[0], 0, "indptr[0]");
        assert_eq!(indptr[rows], indices.len(), "indptr end");
        assert!(indptr.windows(2).all(|w| w[0] <= w[1]), "indptr monotone");
        assert!(indices.iter().all(|&c| (c as usize) < cols), "col in range");
        if let Some(v) = &values {
            assert_eq!(v.len(), indices.len(), "values length");
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
            csc: OnceLock::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Row pointer array.
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Explicit values, if any.
    pub fn values(&self) -> Option<&[f32]> {
        self.values.as_deref()
    }

    /// Value of the `k`-th stored entry.
    #[inline]
    fn value_at(&self, k: usize) -> f32 {
        self.values.as_ref().map_or(1.0, |v| v[k])
    }

    /// **SpMM**: `self @ dense`, the feature-aggregation kernel (Eq. 1–2).
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, dense.cols());
        self.spmm_into(dense, &mut out);
        out
    }

    /// [`SparseMatrix::spmm`] writing into a caller-provided (e.g.
    /// workspace-recycled) output matrix; prior contents are overwritten.
    pub fn spmm_into(&self, dense: &Matrix, out: &mut Matrix) {
        self.spmm_into_opt(dense, out, simd::available());
    }

    /// [`SparseMatrix::spmm_into`] with an explicit SIMD-gather switch —
    /// the vectorized and scalar gathers are bitwise-equal, so this only
    /// exists for dispatch routing and for benchmarking both in one
    /// process.
    pub(crate) fn spmm_into_opt(&self, dense: &Matrix, out: &mut Matrix, use_simd: bool) {
        assert_eq!(self.cols, dense.rows(), "spmm shape mismatch");
        assert_eq!((out.rows(), out.cols()), (self.rows, dense.cols()));
        out.data_mut().fill(0.0);
        self.spmm_rows_into(dense, 0..self.rows, out, use_simd);
    }

    /// SpMM with the row loop parallelized over `pool`.
    pub fn spmm_pool(&self, dense: &Matrix, pool: &ThreadPool) -> Matrix {
        let mut out = Matrix::zeros(self.rows, dense.cols());
        self.spmm_pool_into(dense, pool, &mut out);
        out
    }

    /// [`SparseMatrix::spmm_pool`] writing into a caller-provided output
    /// matrix; prior contents are overwritten.
    pub fn spmm_pool_into(&self, dense: &Matrix, pool: &ThreadPool, out: &mut Matrix) {
        self.spmm_pool_into_opt(dense, pool, out, simd::available());
    }

    /// [`SparseMatrix::spmm_pool_into`] with an explicit SIMD switch (see
    /// [`SparseMatrix::spmm_into_opt`]).
    pub(crate) fn spmm_pool_into_opt(
        &self,
        dense: &Matrix,
        pool: &ThreadPool,
        out: &mut Matrix,
        use_simd: bool,
    ) {
        assert_eq!(self.cols, dense.rows(), "spmm shape mismatch");
        assert_eq!((out.rows(), out.cols()), (self.rows, dense.cols()));
        out.data_mut().fill(0.0);
        let n = dense.cols();
        let out_ptr = out.data_mut().as_mut_ptr() as usize;
        let shadow = racecheck::region("tensor.spmm_pool", self.rows);
        pool.parallel_ranges(self.rows, |range| {
            racecheck::write(&shadow, range.start, range.len());
            for i in range {
                // SAFETY: each output row is written by exactly one worker.
                let drow =
                    unsafe { std::slice::from_raw_parts_mut((out_ptr as *mut f32).add(i * n), n) };
                self.row_accumulate(dense, i, drow, use_simd);
            }
        });
    }

    fn spmm_rows_into(
        &self,
        dense: &Matrix,
        range: std::ops::Range<usize>,
        out: &mut Matrix,
        use_simd: bool,
    ) {
        for i in range {
            let n = out.cols();
            let drow = &mut out.data_mut()[i * n..(i + 1) * n];
            self.row_accumulate(dense, i, drow, use_simd);
        }
    }

    #[inline]
    fn row_accumulate(&self, dense: &Matrix, i: usize, drow: &mut [f32], use_simd: bool) {
        accumulate_entries(
            &self.indices,
            self.values.as_deref(),
            self.indptr[i]..self.indptr[i + 1],
            dense,
            drow,
            use_simd,
        );
    }

    /// **Transposed SpMM**: `selfᵀ @ dense`. Needed by the backward pass of
    /// feature aggregation (`dX = Aᵀ dY`).
    pub fn spmm_transpose(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.rows, dense.rows(), "spmm_transpose shape mismatch");
        let mut out = Matrix::zeros(self.cols, dense.cols());
        for i in 0..self.rows {
            let src = dense.row(i);
            for k in self.indptr[i]..self.indptr[i + 1] {
                let j = self.indices[k] as usize;
                let w = self.value_at(k);
                let n = out.cols();
                let drow = &mut out.data_mut()[j * n..(j + 1) * n];
                for (d, &s) in drow.iter_mut().zip(src) {
                    *d += w * s;
                }
            }
        }
        out
    }

    /// Returns the cached CSC mirror, building it on first use (a counting
    /// sort, `O(nnz + cols)`). Clones made after this call share the mirror.
    pub fn csc(&self) -> &CscMirror {
        self.csc.get_or_init(|| Arc::new(self.build_csc()))
    }

    /// Whether the CSC mirror has been built (for cache-reuse assertions).
    pub fn csc_is_built(&self) -> bool {
        self.csc.get().is_some()
    }

    fn build_csc(&self) -> CscMirror {
        let mut colptr = vec![0usize; self.cols + 1];
        for &j in &self.indices {
            colptr[j as usize + 1] += 1;
        }
        for c in 0..self.cols {
            colptr[c + 1] += colptr[c];
        }
        let mut next = colptr.clone();
        let mut rowidx = vec![0u32; self.nnz()];
        let mut values = self.values.as_ref().map(|_| vec![0.0f32; self.nnz()]);
        // Visiting CSR entries in row-major order fills each column's slots
        // with ascending rows — the invariant the exactness claim rests on.
        for i in 0..self.rows {
            for k in self.indptr[i]..self.indptr[i + 1] {
                let j = self.indices[k] as usize;
                let slot = next[j];
                next[j] += 1;
                rowidx[slot] = i as u32;
                if let (Some(dst), Some(src)) = (values.as_mut(), self.values.as_ref()) {
                    dst[slot] = src[k];
                }
            }
        }
        CscMirror {
            colptr,
            rowidx,
            values,
        }
    }

    /// Transposed SpMM as a CSC **gather**: output row `j` is assembled from
    /// column `j`'s entries alone. Bitwise-equal to the scatter version
    /// (see [`CscMirror`]) but row-parallelizable — each output row touches
    /// disjoint state.
    pub fn spmm_transpose_csc(&self, dense: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, dense.cols());
        self.spmm_transpose_csc_into(dense, &mut out);
        out
    }

    /// [`SparseMatrix::spmm_transpose_csc`] writing into a caller-provided
    /// output matrix; prior contents are overwritten.
    pub fn spmm_transpose_csc_into(&self, dense: &Matrix, out: &mut Matrix) {
        self.spmm_transpose_csc_into_opt(dense, out, simd::available());
    }

    /// [`SparseMatrix::spmm_transpose_csc_into`] with an explicit SIMD
    /// switch (see [`SparseMatrix::spmm_into_opt`]).
    pub(crate) fn spmm_transpose_csc_into_opt(
        &self,
        dense: &Matrix,
        out: &mut Matrix,
        use_simd: bool,
    ) {
        assert_eq!(self.rows, dense.rows(), "spmm_transpose shape mismatch");
        assert_eq!((out.rows(), out.cols()), (self.cols, dense.cols()));
        out.data_mut().fill(0.0);
        let csc = self.csc();
        let n = dense.cols();
        for j in 0..self.cols {
            Self::csc_gather_row(
                csc,
                dense,
                j,
                &mut out.data_mut()[j * n..(j + 1) * n],
                use_simd,
            );
        }
    }

    /// [`SparseMatrix::spmm_transpose_csc`] with the output rows
    /// parallelized over `pool`.
    pub fn spmm_transpose_csc_pool(&self, dense: &Matrix, pool: &ThreadPool) -> Matrix {
        let mut out = Matrix::zeros(self.cols, dense.cols());
        self.spmm_transpose_csc_pool_into(dense, pool, &mut out);
        out
    }

    /// [`SparseMatrix::spmm_transpose_csc_pool`] writing into a
    /// caller-provided output matrix; prior contents are overwritten.
    pub fn spmm_transpose_csc_pool_into(
        &self,
        dense: &Matrix,
        pool: &ThreadPool,
        out: &mut Matrix,
    ) {
        self.spmm_transpose_csc_pool_into_opt(dense, pool, out, simd::available());
    }

    /// [`SparseMatrix::spmm_transpose_csc_pool_into`] with an explicit SIMD
    /// switch (see [`SparseMatrix::spmm_into_opt`]).
    pub(crate) fn spmm_transpose_csc_pool_into_opt(
        &self,
        dense: &Matrix,
        pool: &ThreadPool,
        out: &mut Matrix,
        use_simd: bool,
    ) {
        assert_eq!(self.rows, dense.rows(), "spmm_transpose shape mismatch");
        assert_eq!((out.rows(), out.cols()), (self.cols, dense.cols()));
        out.data_mut().fill(0.0);
        let csc = self.csc();
        let n = dense.cols();
        let out_ptr = out.data_mut().as_mut_ptr() as usize;
        let shadow = racecheck::region("tensor.spmm_transpose_csc_pool", self.cols);
        pool.parallel_ranges(self.cols, |range| {
            racecheck::write(&shadow, range.start, range.len());
            for j in range {
                // SAFETY: each output row is written by exactly one worker,
                // and the pool call blocks until all workers finish.
                let drow =
                    unsafe { std::slice::from_raw_parts_mut((out_ptr as *mut f32).add(j * n), n) };
                Self::csc_gather_row(csc, dense, j, drow, use_simd);
            }
        });
    }

    #[inline]
    fn csc_gather_row(csc: &CscMirror, dense: &Matrix, j: usize, drow: &mut [f32], use_simd: bool) {
        accumulate_entries(
            &csc.rowidx,
            csc.values.as_deref(),
            csc.colptr[j]..csc.colptr[j + 1],
            dense,
            drow,
            use_simd,
        );
    }

    /// **SDDMM**: for every stored entry `(i, j)` computes `a_i · b_j`
    /// (rows of `a` and `b`), returning a sparse matrix with the same
    /// structure and the dot products as values.
    #[allow(clippy::needless_range_loop)] // CSR walk indexes `vals` by entry
    pub fn sddmm(&self, a: &Matrix, b: &Matrix) -> SparseMatrix {
        assert_eq!(a.rows(), self.rows, "sddmm a rows");
        assert_eq!(b.rows(), self.cols, "sddmm b rows");
        assert_eq!(a.cols(), b.cols(), "sddmm inner dim");
        let mut vals = vec![0.0f32; self.nnz()];
        for i in 0..self.rows {
            let ar = a.row(i);
            for k in self.indptr[i]..self.indptr[i + 1] {
                let j = self.indices[k] as usize;
                let br = b.row(j);
                let mut acc = 0.0f32;
                for (x, y) in ar.iter().zip(br) {
                    acc += x * y;
                }
                vals[k] = acc;
            }
        }
        SparseMatrix::new(
            self.rows,
            self.cols,
            self.indptr.clone(),
            self.indices.clone(),
            Some(vals),
        )
    }

    /// Broadcast-add SDDMM variant (`u_add_v` in DGL terms): value of entry
    /// `(i, j)` becomes `row_vals[i] + col_vals[j]` — the edge-score
    /// computation of attention models (GAT).
    #[allow(clippy::needless_range_loop)] // CSR walk indexes values by entry
    pub fn sddmm_add(&self, row_vals: &[f32], col_vals: &[f32]) -> SparseMatrix {
        assert_eq!(row_vals.len(), self.rows, "sddmm_add row length");
        assert_eq!(col_vals.len(), self.cols, "sddmm_add col length");
        let mut vals = vec![0.0f32; self.nnz()];
        for i in 0..self.rows {
            for k in self.indptr[i]..self.indptr[i + 1] {
                vals[k] = row_vals[i] + col_vals[self.indices[k] as usize];
            }
        }
        self.with_values(vals)
    }

    /// Row-wise softmax over the stored values (edge softmax): within each
    /// row the values are replaced by `exp(v - max) / Σ exp(v - max)`.
    /// Rows without entries are left empty. Panics if no values are set.
    pub fn row_softmax(&self) -> SparseMatrix {
        let v = self.values.as_ref().expect("row_softmax needs values");
        let mut out = v.clone();
        for i in 0..self.rows {
            let (lo, hi) = (self.indptr[i], self.indptr[i + 1]);
            if lo == hi {
                continue;
            }
            let max = out[lo..hi]
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for x in &mut out[lo..hi] {
                *x = (*x - max).exp();
                denom += *x;
            }
            for x in &mut out[lo..hi] {
                *x /= denom;
            }
        }
        self.with_values(out)
    }

    /// Backward of [`SparseMatrix::row_softmax`]: given the softmax output
    /// `alpha` (this matrix's values) and upstream gradient `d_alpha`,
    /// returns `d_logits`: `α_k (dα_k − Σ_{k'∈row} α_{k'} dα_{k'})`.
    pub fn row_softmax_backward(&self, d_alpha: &[f32]) -> Vec<f32> {
        let alpha = self
            .values
            .as_ref()
            .expect("row_softmax_backward needs values");
        assert_eq!(d_alpha.len(), alpha.len(), "gradient length");
        let mut out = vec![0.0f32; alpha.len()];
        for i in 0..self.rows {
            let (lo, hi) = (self.indptr[i], self.indptr[i + 1]);
            let dot: f32 = alpha[lo..hi]
                .iter()
                .zip(&d_alpha[lo..hi])
                .map(|(a, d)| a * d)
                .sum();
            for k in lo..hi {
                out[k] = alpha[k] * (d_alpha[k] - dot);
            }
        }
        out
    }

    /// Sums the stored values within each row (e.g. `Σ_k de_k` per dst node
    /// in attention backward). Panics if no values are set.
    pub fn row_value_sums(&self) -> Vec<f32> {
        let v = self.values.as_ref().expect("row_value_sums needs values");
        let mut out = vec![0.0f32; self.rows];
        for i in 0..self.rows {
            out[i] = v[self.indptr[i]..self.indptr[i + 1]].iter().sum();
        }
        out
    }

    /// Sums the stored values per *column* (scatter to sources).
    pub fn col_value_sums(&self) -> Vec<f32> {
        let v = self.values.as_ref().expect("col_value_sums needs values");
        let mut out = vec![0.0f32; self.cols];
        for (k, &j) in self.indices.iter().enumerate() {
            out[j as usize] += v[k];
        }
        out
    }

    /// Replaces the values; structure unchanged.
    pub fn with_values(&self, values: Vec<f32>) -> SparseMatrix {
        assert_eq!(values.len(), self.nnz());
        SparseMatrix::new(
            self.rows,
            self.cols,
            self.indptr.clone(),
            self.indices.clone(),
            Some(values),
        )
    }

    /// Converts to dense (for tests / tiny matrices).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for k in self.indptr[i]..self.indptr[i + 1] {
                let j = self.indices[k] as usize;
                let cur = out.get(i, j);
                out.set(i, j, cur + self.value_at(k));
            }
        }
        out
    }
}

/// The single entry-accumulation kernel shared by every CSR/CSC gather in
/// this crate: `drow += w_k * dense[row_of(k)]` for each stored entry `k`
/// in `range`. Both the owned [`SparseMatrix`] paths and the borrowed
/// [`SparseView`] paths funnel through here, so the SIMD gather tier (and
/// its bitwise-equal scalar fallback) applies identically to both.
#[inline]
fn accumulate_entries(
    indices: &[u32],
    values: Option<&[f32]>,
    range: std::ops::Range<usize>,
    dense: &Matrix,
    drow: &mut [f32],
    use_simd: bool,
) {
    for k in range {
        let j = indices[k] as usize;
        let w = values.map_or(1.0, |v| v[k]);
        let src = dense.row(j);
        if use_simd {
            simd::axpy(drow, w, src);
        } else {
            for (d, &s) in drow.iter_mut().zip(src) {
                *d += w * s;
            }
        }
    }
}

/// A **borrowed** CSR adjacency: the same shape as [`SparseMatrix`] but all
/// three arrays are slices into caller-owned storage (in practice the
/// sampler's epoch-stamped batch arena), with a compact `u32` row-pointer
/// array — a sampled block never has more than `u32::MAX` entries.
///
/// This is the zero-copy handoff type of the fused sampling→assembly path:
/// `nn`/`serve` aggregate straight out of the arena through
/// [`SparseView::spmm_into`] (routed by `DispatchPolicy::aggregate_view_into`),
/// which shares its inner gather kernel — including the SIMD tier — with the
/// owned paths. Crossing an ownership boundary (the loader's reorder heap,
/// training's CSC-backed backward pass) materializes via
/// [`SparseView::to_owned`].
#[derive(Clone, Copy, Debug)]
pub struct SparseView<'a> {
    rows: usize,
    cols: usize,
    indptr: &'a [u32],
    indices: &'a [u32],
    values: Option<&'a [f32]>,
}

impl<'a> SparseView<'a> {
    /// Wraps borrowed CSR arrays. Cheap O(rows) structural checks run
    /// always; the O(nnz) checks that [`SparseMatrix::new`] performs are
    /// debug-only — skipping that per-batch revalidation pass is part of
    /// the point of arena assembly, and the producing sampler is
    /// property-tested bitwise-equal to the validated legacy path.
    pub fn new(
        rows: usize,
        cols: usize,
        indptr: &'a [u32],
        indices: &'a [u32],
        values: Option<&'a [f32]>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length");
        assert_eq!(indptr[0], 0, "indptr[0]");
        assert_eq!(indptr[rows] as usize, indices.len(), "indptr end");
        if let Some(v) = values {
            assert_eq!(v.len(), indices.len(), "values length");
        }
        debug_assert!(indptr.windows(2).all(|w| w[0] <= w[1]), "indptr monotone");
        debug_assert!(indices.iter().all(|&c| (c as usize) < cols), "col in range");
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Row pointer array (compact `u32`).
    pub fn indptr(&self) -> &'a [u32] {
        self.indptr
    }

    /// Column indices.
    pub fn indices(&self) -> &'a [u32] {
        self.indices
    }

    /// Explicit values, if any.
    pub fn values(&self) -> Option<&'a [f32]> {
        self.values
    }

    /// **SpMM** `self @ dense` into a caller-provided matrix — the borrowed
    /// twin of [`SparseMatrix::spmm_into`].
    pub fn spmm_into(&self, dense: &Matrix, out: &mut Matrix) {
        self.spmm_into_opt(dense, out, simd::available());
    }

    pub(crate) fn spmm_into_opt(&self, dense: &Matrix, out: &mut Matrix, use_simd: bool) {
        assert_eq!(self.cols, dense.rows(), "spmm shape mismatch");
        assert_eq!((out.rows(), out.cols()), (self.rows, dense.cols()));
        out.data_mut().fill(0.0);
        let n = out.cols();
        for i in 0..self.rows {
            let drow = &mut out.data_mut()[i * n..(i + 1) * n];
            self.row_accumulate(dense, i, drow, use_simd);
        }
    }

    /// [`SparseView::spmm_into`] with the row loop parallelized over `pool`.
    pub fn spmm_pool_into(&self, dense: &Matrix, pool: &ThreadPool, out: &mut Matrix) {
        self.spmm_pool_into_opt(dense, pool, out, simd::available());
    }

    pub(crate) fn spmm_pool_into_opt(
        &self,
        dense: &Matrix,
        pool: &ThreadPool,
        out: &mut Matrix,
        use_simd: bool,
    ) {
        assert_eq!(self.cols, dense.rows(), "spmm shape mismatch");
        assert_eq!((out.rows(), out.cols()), (self.rows, dense.cols()));
        out.data_mut().fill(0.0);
        let n = dense.cols();
        let out_ptr = out.data_mut().as_mut_ptr() as usize;
        let shadow = racecheck::region("tensor.spmm_view_pool", self.rows);
        pool.parallel_ranges(self.rows, |range| {
            racecheck::write(&shadow, range.start, range.len());
            for i in range {
                // SAFETY: each output row is written by exactly one worker,
                // and the pool call blocks until all workers finish — the
                // borrowed arena slices outlive the call for the same reason.
                let drow =
                    unsafe { std::slice::from_raw_parts_mut((out_ptr as *mut f32).add(i * n), n) };
                self.row_accumulate(dense, i, drow, use_simd);
            }
        });
    }

    #[inline]
    fn row_accumulate(&self, dense: &Matrix, i: usize, drow: &mut [f32], use_simd: bool) {
        accumulate_entries(
            self.indices,
            self.values,
            self.indptr[i] as usize..self.indptr[i + 1] as usize,
            dense,
            drow,
            use_simd,
        );
    }

    /// Materializes an owned [`SparseMatrix`] — the fallback at ownership
    /// boundaries (loader channel handoff, CSC-backed backward pass). The
    /// structure was validated at view construction, so this is three
    /// straight copies (indptr widened to `usize`), not a revalidating
    /// [`SparseMatrix::new`].
    pub fn to_owned(&self) -> SparseMatrix {
        SparseMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr: self.indptr.iter().map(|&p| p as usize).collect(),
            indices: self.indices.to_vec(),
            values: self.values.map(|v| v.to_vec()),
            csc: OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// [[1, 0, 2], [0, 3, 0]]
    fn sample() -> SparseMatrix {
        SparseMatrix::new(
            2,
            3,
            vec![0, 2, 3],
            vec![0, 2, 1],
            Some(vec![1.0, 2.0, 3.0]),
        )
    }

    #[test]
    fn spmm_matches_dense() {
        let s = sample();
        let d = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let got = s.spmm(&d);
        let want = s.to_dense().matmul(&d);
        assert_eq!(got.data(), want.data());
    }

    #[test]
    fn spmm_implicit_ones() {
        let s = SparseMatrix::new(2, 2, vec![0, 1, 2], vec![1, 0], None);
        let d = Matrix::from_vec(2, 1, vec![10., 20.]);
        let got = s.spmm(&d);
        assert_eq!(got.data(), &[20., 10.]);
    }

    #[test]
    fn spmm_pool_matches_serial() {
        let pool = ThreadPool::new("t", 4);
        // Random-ish structure.
        let rows = 50;
        let cols = 40;
        let mut indptr = vec![0usize];
        let mut indices = Vec::new();
        let mut vals = Vec::new();
        for i in 0..rows {
            for j in 0..cols {
                if (i * 7 + j * 13) % 5 == 0 {
                    indices.push(j as u32);
                    vals.push(((i + j) % 3) as f32 + 0.5);
                }
            }
            indptr.push(indices.len());
        }
        let s = SparseMatrix::new(rows, cols, indptr, indices, Some(vals));
        let d = Matrix::xavier(cols, 8, 3);
        let a = s.spmm(&d);
        let b = s.spmm_pool(&d, &pool);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn spmm_transpose_matches_dense_transpose() {
        let s = sample();
        let d = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let got = s.spmm_transpose(&d);
        // dense: s.to_dense()ᵀ @ d
        let sd = s.to_dense();
        let mut st = Matrix::zeros(3, 2);
        for i in 0..2 {
            for j in 0..3 {
                st.set(j, i, sd.get(i, j));
            }
        }
        let want = st.matmul(&d);
        assert_eq!(got.data(), want.data());
    }

    #[test]
    fn csc_gather_matches_scatter_bitwise() {
        // Ragged structure with values: gather vs scatter must agree exactly.
        let rows = 37;
        let cols = 23;
        let mut indptr = vec![0usize];
        let mut indices = Vec::new();
        let mut vals = Vec::new();
        for i in 0..rows {
            for j in 0..cols {
                if (i * 5 + j * 11) % 7 == 0 {
                    indices.push(j as u32);
                    vals.push(((i * j) % 13) as f32 * 0.37 - 1.0);
                }
            }
            indptr.push(indices.len());
        }
        let s = SparseMatrix::new(rows, cols, indptr, indices, Some(vals));
        let d = Matrix::xavier(rows, 9, 11);
        assert_eq!(s.spmm_transpose(&d).data(), s.spmm_transpose_csc(&d).data());
    }

    #[test]
    fn csc_pool_matches_serial() {
        let pool = ThreadPool::new("t", 4);
        let s = SparseMatrix::new(3, 4, vec![0, 2, 3, 5], vec![0, 3, 1, 0, 2], None);
        let d = Matrix::xavier(3, 6, 12);
        let serial = s.spmm_transpose_csc(&d);
        let par = s.spmm_transpose_csc_pool(&d, &pool);
        assert_eq!(serial.data(), par.data());
    }

    #[test]
    fn csc_rows_ascend_within_columns() {
        let s = sample();
        let csc = s.csc();
        for j in 0..s.cols() {
            let col = &csc.rowidx()[csc.colptr()[j]..csc.colptr()[j + 1]];
            assert!(col.windows(2).all(|w| w[0] < w[1]), "col {j}: {col:?}");
        }
    }

    #[test]
    fn clone_shares_built_csc_mirror() {
        let s = sample();
        assert!(!s.csc_is_built());
        let before = s.clone();
        assert!(!before.csc_is_built(), "lazy mirror is not cloned eagerly");
        let _ = s.csc();
        let after = s.clone();
        assert!(after.csc_is_built(), "built mirror is shared into clones");
        assert!(
            std::ptr::eq(s.csc(), after.csc()),
            "same Arc, not a rebuild"
        );
        assert_eq!(s, after, "equality ignores the cache");
        assert_eq!(s, before);
    }

    #[test]
    fn sddmm_computes_dots() {
        let s = SparseMatrix::new(2, 2, vec![0, 1, 2], vec![1, 0], None);
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::from_vec(2, 2, vec![5., 6., 7., 8.]);
        let out = s.sddmm(&a, &b);
        // entry (0,1): a0·b1 = 1*7+2*8 = 23; entry (1,0): a1·b0 = 3*5+4*6=39.
        assert_eq!(out.values().unwrap(), &[23.0, 39.0]);
        assert_eq!(out.indices(), s.indices());
    }

    #[test]
    fn to_dense_roundtrip_values() {
        let s = sample();
        let d = s.to_dense();
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(0, 2), 2.0);
        assert_eq!(d.get(1, 1), 3.0);
        assert_eq!(d.get(1, 0), 0.0);
    }

    #[test]
    #[should_panic]
    fn bad_indptr_panics() {
        SparseMatrix::new(2, 2, vec![0, 3, 2], vec![0, 1], None);
    }

    #[test]
    #[should_panic]
    fn col_out_of_range_panics() {
        SparseMatrix::new(1, 2, vec![0, 1], vec![5], None);
    }

    #[test]
    fn sddmm_add_broadcasts() {
        let s = SparseMatrix::new(2, 3, vec![0, 2, 3], vec![0, 2, 1], None);
        let out = s.sddmm_add(&[10.0, 20.0], &[1.0, 2.0, 3.0]);
        assert_eq!(out.values().unwrap(), &[11.0, 13.0, 22.0]);
    }

    #[test]
    fn row_softmax_rows_sum_to_one() {
        let s = SparseMatrix::new(3, 3, vec![0, 2, 2, 5], vec![0, 1, 0, 1, 2], None)
            .with_values(vec![1.0, 2.0, 5.0, 5.0, 5.0]);
        let sm = s.row_softmax();
        let v = sm.values().unwrap();
        assert!((v[0] + v[1] - 1.0).abs() < 1e-6);
        assert!(v[1] > v[0]); // larger logit gets more mass
        assert!((v[2] + v[3] + v[4] - 1.0).abs() < 1e-6);
        assert!((v[2] - 1.0 / 3.0).abs() < 1e-6); // uniform row
    }

    #[test]
    fn row_softmax_stable_for_large_values() {
        let s = SparseMatrix::new(1, 2, vec![0, 2], vec![0, 1], Some(vec![1000.0, -1000.0]));
        let v = s.row_softmax();
        assert!(v.values().unwrap().iter().all(|x| x.is_finite()));
        assert!((v.values().unwrap()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn row_softmax_backward_matches_finite_difference() {
        let logits = vec![0.3f32, -0.5, 1.2, 0.1];
        let s = SparseMatrix::new(2, 2, vec![0, 2, 4], vec![0, 1, 0, 1], Some(logits.clone()));
        let alpha = s.row_softmax();
        // Upstream grad on alpha.
        let d_alpha = vec![0.7f32, -0.2, 0.4, 0.9];
        let analytic = alpha.row_softmax_backward(&d_alpha);
        // FD on loss = Σ d_alpha · softmax(logits).
        let eps = 1e-3f32;
        for k in 0..4 {
            let mut lp = logits.clone();
            lp[k] += eps;
            let mut lm = logits.clone();
            lm[k] -= eps;
            let f = |l: Vec<f32>| -> f32 {
                let sm = s.with_values(l).row_softmax();
                sm.values()
                    .unwrap()
                    .iter()
                    .zip(&d_alpha)
                    .map(|(a, d)| a * d)
                    .sum()
            };
            let fd = (f(lp) - f(lm)) / (2.0 * eps);
            assert!(
                (fd - analytic[k]).abs() < 1e-3,
                "k={k}: fd {fd} vs {}",
                analytic[k]
            );
        }
    }

    #[test]
    fn row_and_col_value_sums() {
        let s = SparseMatrix::new(
            2,
            3,
            vec![0, 2, 3],
            vec![0, 2, 1],
            Some(vec![1.0, 2.0, 3.0]),
        );
        assert_eq!(s.row_value_sums(), vec![3.0, 3.0]);
        assert_eq!(s.col_value_sums(), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn with_values_preserves_structure() {
        let s = sample();
        let t = s.with_values(vec![9.0, 9.0, 9.0]);
        assert_eq!(t.indptr(), s.indptr());
        assert_eq!(t.values().unwrap(), &[9.0, 9.0, 9.0]);
    }

    #[test]
    fn empty_rows_ok() {
        let s = SparseMatrix::new(3, 2, vec![0, 0, 1, 1], vec![1], None);
        let d = Matrix::from_vec(2, 1, vec![5., 7.]);
        let out = s.spmm(&d);
        assert_eq!(out.data(), &[0., 7., 0.]);
    }

    /// Borrowed-view twin of `sample()`.
    fn sample_view_arrays() -> (Vec<u32>, Vec<u32>, Vec<f32>) {
        (vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0])
    }

    #[test]
    fn view_spmm_bitwise_matches_owned() {
        let (indptr, indices, values) = sample_view_arrays();
        let v = SparseView::new(2, 3, &indptr, &indices, Some(&values));
        let owned = sample();
        let d = Matrix::xavier(3, 7, 5);
        let mut a = Matrix::zeros(2, 7);
        let mut b = Matrix::zeros(2, 7);
        owned.spmm_into(&d, &mut a);
        v.spmm_into(&d, &mut b);
        assert_eq!(a.data(), b.data(), "view and owned SpMM must agree bitwise");
    }

    #[test]
    fn view_spmm_scalar_and_simd_agree_bitwise() {
        let (indptr, indices, values) = sample_view_arrays();
        let v = SparseView::new(2, 3, &indptr, &indices, Some(&values));
        let d = Matrix::xavier(3, 9, 6);
        let mut a = Matrix::zeros(2, 9);
        let mut b = Matrix::zeros(2, 9);
        v.spmm_into_opt(&d, &mut a, false);
        v.spmm_into_opt(&d, &mut b, simd::available());
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn view_pool_matches_serial() {
        let pool = ThreadPool::new("t", 4);
        // Ragged structure, implicit ones.
        let mut indptr = vec![0u32];
        let mut indices: Vec<u32> = Vec::new();
        for i in 0..40u32 {
            for j in 0..30u32 {
                if (i * 7 + j * 13) % 5 == 0 {
                    indices.push(j);
                }
            }
            indptr.push(indices.len() as u32);
        }
        let v = SparseView::new(40, 30, &indptr, &indices, None);
        let d = Matrix::xavier(30, 8, 3);
        let mut a = Matrix::zeros(40, 8);
        let mut b = Matrix::zeros(40, 8);
        v.spmm_into(&d, &mut a);
        v.spmm_pool_into(&d, &pool, &mut b);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn view_to_owned_round_trips() {
        let (indptr, indices, values) = sample_view_arrays();
        let v = SparseView::new(2, 3, &indptr, &indices, Some(&values));
        let owned = v.to_owned();
        assert_eq!(owned, sample());
        assert!(!owned.csc_is_built(), "materialized view starts lazy");
    }

    #[test]
    #[should_panic]
    fn view_bad_indptr_end_panics() {
        let indptr = vec![0u32, 3];
        let indices = vec![0u32, 1];
        SparseView::new(1, 2, &indptr, &indices, None);
    }
}
