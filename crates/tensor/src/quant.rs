//! Post-training weight quantization for inference.
//!
//! A [`QuantizedMatrix`] is built once from trained f32 weights and then
//! used as the `B` operand of inference GEMMs. Two schemes:
//!
//! * **bf16** — each value keeps the upper 16 bits of its f32 encoding
//!   (sign, exponent, 8 mantissa bits), rounded to nearest-even. Halves
//!   weight memory; relative error per value ≤ 2⁻⁸.
//! * **int8** — per-*column* affine-free quantization: each column `j`
//!   stores `round(v / scale_j)` clamped to ±127 with
//!   `scale_j = maxabs_j / 127` (columns of all zeros use scale 1.0).
//!   Per-column scales matter because GNN weight columns span very
//!   different magnitudes after training.
//!
//! Dequantization happens inside the GEMM: the SIMD path dequantizes while
//! packing `B` panels (touching each weight once per `MC`-row block), and
//! the scalar fallback below dequantizes one row at a time into a pack-
//! arena buffer. Activations stay f32 throughout — this trades weight
//! bandwidth for a bounded accuracy delta, pinned by the serve-side
//! accuracy tests.

use std::ops::Range;

use crate::dense::Matrix;
use crate::workspace;

/// Quantization scheme for inference weights.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuantKind {
    /// Truncated f32 (upper 16 bits, round-to-nearest-even).
    Bf16,
    /// Per-column symmetric int8 (`scale = maxabs / 127`).
    Int8,
}

impl QuantKind {
    /// Stable lowercase name, used in specs and reports.
    pub fn name(&self) -> &'static str {
        match self {
            QuantKind::Bf16 => "bf16",
            QuantKind::Int8 => "int8",
        }
    }
}

enum Repr {
    Bf16(Vec<u16>),
    Int8 { data: Vec<i8>, scales: Vec<f32> },
}

/// A weight matrix stored quantized, dequantized on the fly during GEMM
/// packing. Built from trained f32 weights via [`QuantizedMatrix::quantize`].
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    repr: Repr,
}

fn f32_to_bf16(v: f32) -> u16 {
    let bits = v.to_bits();
    // Round to nearest, ties to even on the truncated 16-bit boundary.
    let rounded = bits.wrapping_add(0x7FFF + ((bits >> 16) & 1));
    (rounded >> 16) as u16
}

fn bf16_to_f32(u: u16) -> f32 {
    f32::from_bits((u as u32) << 16)
}

impl QuantizedMatrix {
    /// Quantizes trained f32 weights with the given scheme.
    pub fn quantize(m: &Matrix, kind: QuantKind) -> Self {
        let (rows, cols) = (m.rows(), m.cols());
        let repr = match kind {
            QuantKind::Bf16 => Repr::Bf16(m.data().iter().map(|&v| f32_to_bf16(v)).collect()),
            QuantKind::Int8 => {
                let mut scales = vec![0.0f32; cols];
                for r in 0..rows {
                    for (s, &v) in scales.iter_mut().zip(m.row(r)) {
                        *s = s.max(v.abs());
                    }
                }
                for s in scales.iter_mut() {
                    *s = if *s == 0.0 { 1.0 } else { *s / 127.0 };
                }
                let mut data = Vec::with_capacity(rows * cols);
                for r in 0..rows {
                    for (j, &v) in m.row(r).iter().enumerate() {
                        data.push((v / scales[j]).round().clamp(-127.0, 127.0) as i8);
                    }
                }
                Repr::Int8 { data, scales }
            }
        };
        QuantizedMatrix { rows, cols, repr }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The scheme this matrix was quantized with.
    pub fn kind(&self) -> QuantKind {
        match self.repr {
            Repr::Bf16(_) => QuantKind::Bf16,
            Repr::Int8 { .. } => QuantKind::Int8,
        }
    }

    /// Quantized payload size in bytes (excluding scales), for reporting.
    pub fn payload_bytes(&self) -> usize {
        match &self.repr {
            Repr::Bf16(d) => d.len() * 2,
            Repr::Int8 { data, .. } => data.len(),
        }
    }

    /// Expands back to a dense f32 matrix (tests and offline inspection;
    /// the GEMM paths dequantize per-panel instead).
    pub fn dequantize(&self) -> Matrix {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        match &self.repr {
            Repr::Bf16(d) => out.extend(d.iter().map(|&u| bf16_to_f32(u))),
            Repr::Int8 { data, scales } => {
                for r in 0..self.rows {
                    let row = &data[r * self.cols..(r + 1) * self.cols];
                    out.extend(row.iter().zip(scales).map(|(&q, &s)| q as f32 * s));
                }
            }
        }
        Matrix::from_vec(self.rows, self.cols, out)
    }

    /// Dequantizes `out.len()` consecutive values of row `r` starting at
    /// column `j0` — the panel-packing entry point.
    pub(crate) fn dequant_segment_into(&self, r: usize, j0: usize, out: &mut [f32]) {
        match &self.repr {
            Repr::Bf16(d) => {
                let seg = &d[r * self.cols + j0..r * self.cols + j0 + out.len()];
                for (o, &u) in out.iter_mut().zip(seg) {
                    *o = bf16_to_f32(u);
                }
            }
            Repr::Int8 { data, scales } => {
                let seg = &data[r * self.cols + j0..r * self.cols + j0 + out.len()];
                for ((o, &q), &s) in out.iter_mut().zip(seg).zip(&scales[j0..]) {
                    *o = q as f32 * s;
                }
            }
        }
    }
}

/// Scalar fallback GEMM against quantized weights: `dst (+)= A[rows] @
/// Q[b_row_offset..]`, dequantizing one `B` row at a time into the pack
/// arena. Mirrors the `kij` accumulation order of the naive kernels.
pub(crate) fn gemm_scalar(
    a: &Matrix,
    rows: Range<usize>,
    qb: &QuantizedMatrix,
    b_row_offset: usize,
    dst: &mut [f32],
    accumulate: bool,
) {
    let k_dim = a.cols();
    let n = qb.cols();
    let m = rows.len();
    debug_assert_eq!(dst.len(), m * n, "dst shape");
    if !accumulate {
        dst.fill(0.0);
    }
    if m == 0 || n == 0 || k_dim == 0 {
        return;
    }
    workspace::with_pack_buffers(0, n, |_, brow| {
        for k in 0..k_dim {
            qb.dequant_segment_into(b_row_offset + k, 0, brow);
            for (ir, i) in rows.clone().enumerate() {
                let av = a.row(i)[k];
                if av == 0.0 {
                    continue;
                }
                let drow = &mut dst[ir * n..(ir + 1) * n];
                for (d, &bv) in drow.iter_mut().zip(brow.iter()) {
                    *d += av * bv;
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bf16_roundtrip_is_close_and_exact_on_representables() {
        // Values with ≤ 8 mantissa bits survive exactly.
        for v in [0.0f32, 1.0, -2.5, 0.15625, 384.0] {
            let q = f32_to_bf16(v);
            assert_eq!(bf16_to_f32(q), v, "{v} should be bf16-representable");
        }
        for i in 0..1000 {
            let v = (i as f32) * 0.137 - 68.0;
            let r = bf16_to_f32(f32_to_bf16(v));
            assert!(
                (r - v).abs() <= v.abs() * (1.0 / 256.0) + f32::EPSILON,
                "{v} -> {r}"
            );
        }
    }

    #[test]
    fn int8_per_column_scales_bound_error() {
        let m = Matrix::xavier(40, 13, 42);
        let q = QuantizedMatrix::quantize(&m, QuantKind::Int8);
        let d = q.dequantize();
        // Per-column max-abs bounds the per-value error at scale/2.
        for j in 0..13 {
            let maxabs = (0..40).map(|r| m.row(r)[j].abs()).fold(0.0f32, f32::max);
            let bound = maxabs / 127.0 * 0.5 + f32::EPSILON;
            for r in 0..40 {
                let err = (d.row(r)[j] - m.row(r)[j]).abs();
                assert!(err <= bound, "({r},{j}): err {err} > {bound}");
            }
        }
    }

    #[test]
    fn zero_column_quantizes_to_zero() {
        let mut data = [0.0f32; 6];
        data[1] = 3.0;
        data[3] = -1.5;
        // Column 1 is all zeros.
        let m = Matrix::from_vec(3, 2, vec![data[0], 0.0, data[1], 0.0, data[3], 0.0]);
        let q = QuantizedMatrix::quantize(&m, QuantKind::Int8);
        let d = q.dequantize();
        for r in 0..3 {
            assert_eq!(d.row(r)[1], 0.0);
        }
    }

    #[test]
    fn scalar_quant_gemm_matches_dense_gemm_on_dequantized() {
        let a = Matrix::xavier(9, 14, 1);
        let b = Matrix::xavier(14, 6, 2);
        for kind in [QuantKind::Bf16, QuantKind::Int8] {
            let qb = QuantizedMatrix::quantize(&b, kind);
            let deq = qb.dequantize();
            let want = a.matmul(&deq);
            let mut got = vec![0.0f32; 9 * 6];
            gemm_scalar(&a, 0..9, &qb, 0, &mut got, false);
            for (g, w) in got.iter().zip(want.data()) {
                assert!((g - w).abs() <= 1e-5 * 1.0f32.max(w.abs()), "{g} vs {w}");
            }
        }
    }

    #[test]
    fn payload_shrinks() {
        let m = Matrix::xavier(64, 32, 3);
        let f32_bytes = 64 * 32 * 4;
        assert_eq!(
            QuantizedMatrix::quantize(&m, QuantKind::Bf16).payload_bytes(),
            f32_bytes / 2
        );
        assert_eq!(
            QuantizedMatrix::quantize(&m, QuantKind::Int8).payload_bytes(),
            f32_bytes / 4
        );
    }
}
