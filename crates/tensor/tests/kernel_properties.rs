//! Property tests pinning the blocked and SIMD kernels to the naive
//! references.
//!
//! The blocked GEMM family and the CSC-gather transposed SpMM are written
//! so their per-element accumulation order matches the naive kernels
//! exactly (ascending `k` for GEMM, ascending row within column for the
//! CSC mirror) — so the strongest possible property holds: **bitwise
//! equality**, not just tolerance, across ragged shapes that straddle
//! every blocking boundary (1×1, primes, tall-skinny, rows below the
//! 64-row block). Pool-parallel weight gradients reduce per-worker
//! partials, which legally reorders across ranges, so those are held to
//! max-abs-error ≤ 1e-5 instead.
//!
//! The SIMD tier has a two-level contract against the scalar tier
//! (`DispatchPolicy::force_scalar`, the forced-fallback path):
//!
//! * GEMM / weight gradients / input gradients use FMA, which fuses the
//!   per-step rounding — **scaled 1e-5 tolerance**;
//! * SpMM gathers and the bias/ReLU epilogue vectorize the feature
//!   dimension with separate mul+add in scalar lane order — **bitwise**.

use argo_rt::ThreadPool;
use argo_tensor::{DispatchPolicy, Epilogue, Matrix, SparseMatrix};
use proptest::prelude::*;

/// Scaled tolerance of the FMA contract.
fn fma_close(got: f32, want: f32) -> bool {
    (got - want).abs() <= 1e-5 * 1.0f32.max(want.abs())
}

/// A deterministic ragged sparse matrix with controllable density and
/// optionally explicit (non-unit) values.
fn sparse(
    rows: usize,
    cols: usize,
    density_mod: usize,
    with_values: bool,
    salt: usize,
) -> SparseMatrix {
    let mut indptr = vec![0usize];
    let mut indices = Vec::new();
    let mut vals = Vec::new();
    for i in 0..rows {
        for j in 0..cols {
            if (i * 7 + j * 13 + salt).is_multiple_of(density_mod) {
                indices.push(j as u32);
                vals.push(((i * 5 + j * 3 + salt) % 9) as f32 * 0.35 - 1.2);
            }
        }
        indptr.push(indices.len());
    }
    SparseMatrix::new(rows, cols, indptr, indices, with_values.then_some(vals))
}

/// Shapes that straddle the MC=64 / KC=256 / NC=512 blocking boundaries
/// plus degenerate and prime-dimension cases.
const EDGE_DIMS: &[usize] = &[1, 2, 3, 5, 7, 31, 63, 64, 65, 127, 130];

#[test]
fn blocked_gemm_bitwise_equals_naive_at_edge_shapes() {
    for (s, &m) in EDGE_DIMS.iter().enumerate() {
        let k = EDGE_DIMS[(s + 3) % EDGE_DIMS.len()];
        let n = EDGE_DIMS[(s + 7) % EDGE_DIMS.len()];
        let a = Matrix::xavier(m, k, s as u64);
        let b = Matrix::xavier(k, n, s as u64 + 100);
        assert_eq!(
            a.matmul_blocked(&b).data(),
            a.matmul(&b).data(),
            "gemm {m}x{k}x{n}"
        );
        let b2 = Matrix::xavier(m, n, s as u64 + 150);
        assert_eq!(
            a.matmul_transpose_self_blocked(&b2).data(),
            a.matmul_transpose_self(&b2).data(),
            "AtB {m}x{k}x{n}"
        );
        let bt = Matrix::xavier(n, k, s as u64 + 200);
        assert_eq!(
            a.matmul_transpose_other_blocked(&bt).data(),
            a.matmul_transpose_other(&bt).data(),
            "ABt {m}x{k}x{n}"
        );
    }
}

#[test]
fn csc_spmm_bitwise_equals_scatter_at_edge_shapes() {
    for (s, &rows) in EDGE_DIMS.iter().enumerate() {
        let cols = EDGE_DIMS[(s + 5) % EDGE_DIMS.len()];
        for with_values in [false, true] {
            let adj = sparse(rows, cols, 3 + s % 5, with_values, s);
            let grad = Matrix::xavier(rows, 9, s as u64 + 300);
            assert_eq!(
                adj.spmm_transpose_csc(&grad).data(),
                adj.spmm_transpose(&grad).data(),
                "rows={rows} cols={cols} values={with_values}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Blocked GEMM == naive GEMM, bitwise, over random ragged shapes
    /// (tall-skinny, short-wide, sub-block) and seeds.
    #[test]
    fn blocked_gemm_matches_naive(
        m in 1usize..140,
        k in 1usize..70,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let a = Matrix::xavier(m, k, seed);
        let b = Matrix::xavier(k, n, seed ^ 0x5EED);
        prop_assert_eq!(a.matmul_blocked(&b).data(), a.matmul(&b).data());
    }

    /// Both transpose flavors == naive, bitwise, over random shapes.
    #[test]
    fn blocked_transposes_match_naive(
        m in 1usize..140,
        k in 1usize..24,
        n in 1usize..24,
        seed in 0u64..1000,
    ) {
        let a = Matrix::xavier(m, k, seed);
        let b = Matrix::xavier(m, n, seed ^ 0xA11);
        prop_assert_eq!(
            a.matmul_transpose_self_blocked(&b).data(),
            a.matmul_transpose_self(&b).data()
        );
        let c = Matrix::xavier(n, k, seed ^ 0xB22);
        prop_assert_eq!(
            a.matmul_transpose_other_blocked(&c).data(),
            a.matmul_transpose_other(&c).data()
        );
    }

    /// CSC-gather transposed SpMM == naive scatter, bitwise, with and
    /// without explicit values, over random sparsity patterns.
    #[test]
    fn csc_spmm_matches_scatter(
        rows in 1usize..120,
        cols in 1usize..90,
        density_mod in 2usize..12,
        dim in 1usize..12,
        with_values in any::<bool>(),
        salt in 0usize..64,
    ) {
        let adj = sparse(rows, cols, density_mod, with_values, salt);
        let grad = Matrix::xavier(rows, dim, salt as u64);
        prop_assert_eq!(
            adj.spmm_transpose_csc(&grad).data(),
            adj.spmm_transpose(&grad).data()
        );
    }

    /// Pool-parallel dispatch on the scalar tier: row-partitioned kernels
    /// stay bitwise equal (disjoint writes, unchanged per-row order); the
    /// reduction-based weight gradient is tolerance-equal (≤ 1e-5).
    #[test]
    fn pooled_dispatch_matches_naive(
        m in 1usize..120,
        k in 1usize..16,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let pool = ThreadPool::new("prop", 3);
        let policy = DispatchPolicy::new(1).force_scalar();
        let a = Matrix::xavier(m, k, seed);
        let b = Matrix::xavier(k, n, seed ^ 0x33);
        prop_assert_eq!(
            policy.gemm(&a, &b, Some(&pool)).data(),
            a.matmul(&b).data()
        );
        let g = Matrix::xavier(m, n, seed ^ 0x44);
        let dw = policy.grad_weights(&a, &g, Some(&pool));
        let want = a.matmul_transpose_self(&g);
        for (x, y) in dw.data().iter().zip(want.data()) {
            prop_assert!((x - y).abs() <= 1e-5, "dw {x} vs {y}");
        }
    }

    /// SIMD tier vs forced-scalar fallback, dense kernels: FMA paths are
    /// scaled-1e-5 equal; the fused bias/ReLU epilogue values come out of
    /// bitwise-equal lane ops on tolerance-close inputs. Shapes span
    /// 1..130 across every register-tile and blocking boundary. On hosts
    /// without AVX2+FMA both policies run the identical scalar kernels and
    /// the properties hold trivially.
    #[test]
    fn simd_dispatch_matches_scalar_within_contract(
        m in 1usize..130,
        k in 1usize..130,
        n in 1usize..36,
        seed in 0u64..1000,
    ) {
        let scalar = DispatchPolicy::default().force_scalar();
        let simd = DispatchPolicy::default();
        let a = Matrix::xavier(m, k, seed);
        let b = Matrix::xavier(k, n, seed ^ 0x77);
        let bias: Vec<f32> = (0..n).map(|i| (i as f32) * 0.11 - 0.4).collect();
        let mut got = Matrix::zeros(m, n);
        simd.gemm_into(&a, &b, Epilogue::bias(&bias), None, &mut got);
        let mut want = Matrix::zeros(m, n);
        scalar.gemm_into(&a, &b, Epilogue::bias(&bias), None, &mut want);
        for (x, y) in got.data().iter().zip(want.data()) {
            prop_assert!(fma_close(*x, *y), "gemm+bias {x} vs {y}");
        }
        let g = Matrix::xavier(m, n, seed ^ 0x88);
        let dw_s = simd.grad_weights(&a, &g, None);
        let dw_c = scalar.grad_weights(&a, &g, None);
        for (x, y) in dw_s.data().iter().zip(dw_c.data()) {
            prop_assert!(fma_close(*x, *y), "dw {x} vs {y}");
        }
        let di_s = simd.grad_input(&g, &b, 0..k, None);
        let di_c = scalar.grad_input(&g, &b, 0..k, None);
        for (x, y) in di_s.data().iter().zip(di_c.data()) {
            prop_assert!(fma_close(*x, *y), "di {x} vs {y}");
        }
    }

    /// SIMD tier vs forced-scalar fallback, sparse kernels: the vectorized
    /// row gather uses separate mul+add in scalar lane order, so both SpMM
    /// directions are **bitwise** equal to the fallback.
    #[test]
    fn simd_spmm_bitwise_equals_scalar(
        rows in 1usize..130,
        cols in 1usize..90,
        density_mod in 2usize..12,
        dim in 1usize..20,
        with_values in any::<bool>(),
        salt in 0usize..64,
    ) {
        let scalar = DispatchPolicy::default().force_scalar();
        let simd = DispatchPolicy::default();
        let adj = sparse(rows, cols, density_mod, with_values, salt);
        let h = Matrix::xavier(cols, dim, salt as u64 ^ 0x99);
        prop_assert_eq!(
            simd.aggregate(&adj, &h, None).data(),
            scalar.aggregate(&adj, &h, None).data()
        );
        let grad = Matrix::xavier(rows, dim, salt as u64 ^ 0xAA);
        prop_assert_eq!(
            simd.aggregate_transpose(&adj, &grad, None).data(),
            scalar.aggregate_transpose(&adj, &grad, None).data()
        );
    }
}
